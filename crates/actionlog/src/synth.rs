//! Synthetic action-log generation from Com-IC ground truth.
//!
//! The proprietary Flixster/Douban logs are unavailable offline, so the
//! reproduction manufactures logs with *known* GAPs: run Com-IC cascades for
//! an item pair over a social graph, translate the engine's state-transition
//! events into inform/rate records, and (optionally) mint a fresh user
//! cohort per diffusion session so the learner sees many independent
//! observations. Recovering the ground-truth GAPs within the estimator's
//! confidence intervals (see `gap_learn`) is then a stronger end-to-end
//! check of §7.2 than the paper itself could run.

use crate::log::{Action, ActionLog, ItemId, LogRecord, UserId};
use comic_core::gap::Gap;
use comic_core::oracle::CoinOracle;
use comic_core::seeds::SeedPair;
use comic_core::simulate::{CascadeEngine, EventKind};
use comic_graph::{DiGraph, NodeId};
use rand::{Rng, RngExt};

/// Configuration for [`synthesize_pair_log`].
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Number of independent diffusion sessions.
    pub sessions: usize,
    /// Random seeds per item per session.
    pub seeds_per_item: usize,
    /// Mint fresh user ids per session (`true`, the default, makes every
    /// session an independent cohort — right for GAP learning). With
    /// `false`, users are the graph nodes across all sessions — right for
    /// edge-probability learning.
    pub fresh_cohorts: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            sessions: 200,
            seeds_per_item: 5,
            fresh_cohorts: true,
        }
    }
}

/// Timestamp layout: sessions are separated by a large stride; within a
/// session, events keep their engine emission order (which respects both
/// the step sequence and intra-step ordering — e.g. a reconsideration's
/// B-adoption precedes its triggered A-adoption), so strict "rated before
/// informed/rated" comparisons in the learner are exact.
fn stamp(session: usize, seq: usize) -> u64 {
    session as u64 * 1_000_000_000 + seq as u64
}

/// Generate an action log for the item pair `(item_a, item_b)` by running
/// Com-IC cascades with ground-truth `gap` on `g`.
pub fn synthesize_pair_log<R: Rng>(
    g: &DiGraph,
    gap: Gap,
    item_a: ItemId,
    item_b: ItemId,
    cfg: &SynthConfig,
    rng: &mut R,
) -> ActionLog {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let n = g.num_nodes();
    let mut engine = CascadeEngine::new(g);
    engine.record_events(true);
    let mut oracle = CoinOracle::new(g.num_edges(), SmallRng::seed_from_u64(rng.random::<u64>()));
    let mut log = ActionLog::new();
    for session in 0..cfg.sessions {
        let seeds_a = random_seeds(n, cfg.seeds_per_item, rng);
        let seeds_b = random_seeds(n, cfg.seeds_per_item, rng);
        let sp = SeedPair::new(seeds_a, seeds_b);
        engine.run(&gap, &sp, &mut oracle);
        let user_base = if cfg.fresh_cohorts {
            (session * n) as u32
        } else {
            0
        };
        for (seq, ev) in engine.events().iter().enumerate() {
            let item = match ev.item {
                comic_core::Item::A => item_a,
                comic_core::Item::B => item_b,
            };
            let action = match ev.kind {
                EventKind::Informed | EventKind::Suspended => Some(Action::Informed),
                EventKind::Adopted => Some(Action::Rated),
                EventKind::Rejected => None, // rejection leaves no log trace
            };
            // `Informed` events already fire exactly once per (node, item);
            // `Suspended` would duplicate them, so skip it.
            if ev.kind == EventKind::Suspended {
                continue;
            }
            if let Some(action) = action {
                log.push(LogRecord {
                    user: UserId(user_base + ev.node.0),
                    item,
                    action,
                    t: stamp(session, seq),
                });
            }
        }
    }
    log.sort();
    log
}

fn random_seeds<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(k);
    while out.len() < k.min(n) {
        let v = NodeId(rng.random_range(0..n as u32));
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap_learn::learn_gaps;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn log_is_time_ordered_and_nonempty() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = gen::complete(20, 0.4);
        let gap = Gap::new(0.5, 0.8, 0.5, 0.8).unwrap();
        let log = synthesize_pair_log(
            &g,
            gap,
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 10,
                seeds_per_item: 2,
                fresh_cohorts: true,
            },
            &mut rng,
        );
        assert!(!log.is_empty());
        assert!(log.records().windows(2).all(|w| w[0].t <= w[1].t));
        assert_eq!(log.items(), vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn fresh_cohorts_mint_distinct_users() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = gen::complete(10, 0.5);
        let gap = Gap::new(0.6, 0.9, 0.6, 0.9).unwrap();
        let log = synthesize_pair_log(
            &g,
            gap,
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 5,
                seeds_per_item: 1,
                fresh_cohorts: true,
            },
            &mut rng,
        );
        let max_user = log.users().last().unwrap().0;
        assert!(max_user >= 10, "expected per-session user offsets");
    }

    /// End-to-end §7.2 check: the estimators recover the ground truth GAPs.
    #[test]
    fn learner_recovers_ground_truth() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut grng = SmallRng::seed_from_u64(4);
        let topo = gen::gnm(60, 400, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.5).apply(&topo, &mut grng);
        let truth = Gap::new(0.45, 0.75, 0.55, 0.8).unwrap();
        let log = synthesize_pair_log(
            &g,
            truth,
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 400,
                seeds_per_item: 4,
                fresh_cohorts: true,
            },
            &mut rng,
        );
        let learned = learn_gaps(&log, ItemId(0), ItemId(1)).unwrap();
        let checks = [
            ("q_a0", learned.q_a0, truth.q_a0),
            ("q_ab", learned.q_ab, truth.q_ab),
            ("q_b0", learned.q_b0, truth.q_b0),
            ("q_ba", learned.q_ba, truth.q_ba),
        ];
        for (name, est, truth_v) in checks {
            assert!(
                (est.value - truth_v).abs() < est.ci_half_width.max(0.05) + 0.03,
                "{name}: learned {est} vs truth {truth_v} ({} samples)",
                est.samples
            );
        }
    }
}
