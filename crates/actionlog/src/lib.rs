//! # comic-actionlog
//!
//! User action logs and the learning methodology of the paper's §7.2:
//!
//! * [`log`] — timestamped `(user, item, action)` records with the two
//!   action kinds the paper extracts from Flixster/Douban: *inform* signals
//!   ("want to see", "not interested", wish-listing) and *rate* signals
//!   (actual adoption; rating implies prior informing).
//! * [`synth`] — synthetic log generation by running Com-IC cascades with
//!   ground-truth GAPs over a social graph (the offline stand-in for the
//!   proprietary Flixster/Douban logs; see DESIGN.md §2).
//! * [`gap_learn`] — the paper's GAP estimators with 95% normal-approximation
//!   confidence intervals (Tables 5–7).
//! * [`influence_learn`] — static Bernoulli edge-probability learning in the
//!   spirit of Goyal, Bonchi & Lakshmanan [12], which the paper uses to
//!   obtain `p(u, v)`.
//! * [`io`] — a line-oriented text format for logs, so fixture logs can be
//!   committed next to fixture graphs and replayed deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod gap_learn;
pub mod influence_learn;
pub mod io;
pub mod log;
pub mod synth;

pub use error::LogError;
pub use gap_learn::{learn_gaps, learn_gaps_with, Estimate, GapLearnConfig, LearnedGaps};
pub use influence_learn::{learn_influence, InfluenceLearnConfig};
pub use log::{Action, ActionLog, ItemId, LogRecord, UserId};
