//! GAP learning from action logs — the estimators of §7.2 with 95%
//! confidence intervals (Tables 5–7 of the paper).
//!
//! For an ordered item pair `(A, B)`:
//!
//! * `q̂_{A|∅} = |R_A \ R_{B≺rateA}| / |I_A \ R_{B≺informA}|` — of the users
//!   informed of A who had *not* already adopted B, the fraction who adopted
//!   A;
//! * `q̂_{A|B} = |R_{B≺rateA}| / |R_{B≺informA}|` — of the users who adopted
//!   B before ever being informed of A, the fraction who went on to adopt A;
//!
//! where `R_X` = users who rated X, `I_X` = users informed of X,
//! `R_{B≺rateA}` = users who rated both with B strictly first, and
//! `R_{B≺informA}` = users who rated B strictly before being informed of A.
//! `q̂_{B|∅}` / `q̂_{B|A}` are symmetric. Each estimate is a Bernoulli
//! parameter, so its 95% CI is `q̂ ± 1.96·√(q̂(1−q̂)/n)`.

//!
//! # Parallelism and determinism
//!
//! Every estimator numerator/denominator is a sum of independent per-user
//! indicator variables, so [`learn_gaps_with`] partitions the item-pair
//! statistics across workers: the users informed of the focal item are
//! chunked into fixed ranges, each worker tallies its range's four counts,
//! and the partial counts are reduced by addition — an order-independent
//! (commutative, associative, integer) reduction, so the learned estimates
//! are **identical for every [`GapLearnConfig::threads`] value**.

use crate::error::LogError;
use crate::log::{ActionLog, ItemId, UserId, UserItemTimes};
use comic_core::gap::Gap;
use comic_graph::par::{fixed_ranges, run_sharded};

/// A point estimate with normal-approximation confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Estimate {
    /// The estimated probability.
    pub value: f64,
    /// Half-width of the 95% CI: `1.96·√(v(1−v)/n)`.
    pub ci_half_width: f64,
    /// Denominator sample count.
    pub samples: usize,
}

impl Estimate {
    fn from_counts(what: &str, numerator: usize, denominator: usize) -> Result<Self, LogError> {
        if denominator == 0 {
            return Err(LogError::InsufficientData {
                what: what.to_string(),
                samples: 0,
            });
        }
        let v = numerator as f64 / denominator as f64;
        Ok(Estimate {
            value: v,
            ci_half_width: 1.96 * (v * (1.0 - v) / denominator as f64).sqrt(),
            samples: denominator,
        })
    }

    /// `(lower, upper)` bounds of the 95% CI, clamped to `[0, 1]`.
    pub fn interval(&self) -> (f64, f64) {
        (
            (self.value - self.ci_half_width).max(0.0),
            (self.value + self.ci_half_width).min(1.0),
        )
    }

    /// Whether `truth` falls inside the 95% CI.
    pub fn covers(&self, truth: f64) -> bool {
        let (lo, hi) = self.interval();
        (lo..=hi).contains(&truth)
    }
}

impl std::fmt::Display for Estimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2}", self.value, self.ci_half_width)
    }
}

/// The four learned GAPs for an item pair.
#[derive(Clone, Copy, Debug)]
pub struct LearnedGaps {
    /// `q̂_{A|∅}`.
    pub q_a0: Estimate,
    /// `q̂_{A|B}`.
    pub q_ab: Estimate,
    /// `q̂_{B|∅}`.
    pub q_b0: Estimate,
    /// `q̂_{B|A}`.
    pub q_ba: Estimate,
}

impl LearnedGaps {
    /// The point estimates as a [`Gap`] usable by the solvers.
    pub fn gap(&self) -> Result<Gap, comic_core::ModelError> {
        Gap::new(
            self.q_a0.value,
            self.q_ab.value,
            self.q_b0.value,
            self.q_ba.value,
        )
    }
}

/// Configuration for [`learn_gaps_with`].
#[derive(Clone, Copy, Debug)]
pub struct GapLearnConfig {
    /// Worker threads for the per-user tallies (`0` = one per available
    /// core). Estimates are identical for every value — the reduction is a
    /// plain integer sum.
    pub threads: usize,
}

impl Default for GapLearnConfig {
    fn default() -> Self {
        GapLearnConfig { threads: 1 }
    }
}

/// Users per tally shard — fixed, so the partition (and trivially the
/// summed counts) never depends on the worker count.
const USERS_PER_SHARD: usize = 4_096;

/// The four per-orientation tallies, with the addition reduction that makes
/// the sharded computation order-independent.
#[derive(Clone, Copy, Debug, Default)]
struct DirectedTallies {
    rated_a_not_bfirst: usize,   // |R_A \ R_{B≺rateA}|
    rated_bfirst: usize,         // |R_{B≺rateA}|
    informed_a_not_b_pre: usize, // |I_A \ R_{B≺informA}|
    b_pre_inform: usize,         // |R_{B≺informA}|
}

impl DirectedTallies {
    fn absorb(&mut self, other: DirectedTallies) {
        self.rated_a_not_bfirst += other.rated_a_not_bfirst;
        self.rated_bfirst += other.rated_bfirst;
        self.informed_a_not_b_pre += other.informed_a_not_b_pre;
        self.b_pre_inform += other.b_pre_inform;
    }

    fn observe(&mut self, ta: &UserItemTimes, rated_b: Option<u64>) {
        let Some(ia) = ta.informed_at else { return };
        let b_before_inform = rated_b.is_some_and(|tb| tb < ia);
        if b_before_inform {
            self.b_pre_inform += 1;
            if ta.rated_at.is_some() {
                // Rated both, B first (B's rating precedes even the
                // A inform, hence precedes A's rating).
                self.rated_bfirst += 1;
            }
        } else {
            self.informed_a_not_b_pre += 1;
            if let Some(ra) = ta.rated_at {
                let b_rated_first = rated_b.is_some_and(|tb| tb < ra);
                if !b_rated_first {
                    self.rated_a_not_bfirst += 1;
                }
                // else: adopted B between A-inform and A-rate — a
                // reconsideration-style adoption; counted in neither
                // numerator, exactly as the paper's set algebra does.
            }
        }
    }
}

/// Directed counts for one orientation of the pair: everything needed for
/// `q̂_{A|∅}` and `q̂_{A|B}` with A = `first`, B = `second`.
fn directed_counts(
    log: &ActionLog,
    first: ItemId,
    second: ItemId,
    threads: usize,
) -> Result<(Estimate, Estimate), LogError> {
    let idx_a = log.item_index(first);
    let idx_b = log.item_index(second);
    // An indexable view of A's users for the fixed sharding. No sort: the
    // reduction is a permutation-invariant integer sum, so any stable
    // partition of this Vec yields identical totals for every thread count.
    let users: Vec<(UserId, UserItemTimes)> = idx_a.into_iter().collect();

    let (shards, range_of) = fixed_ranges(users.len(), USERS_PER_SHARD);
    let partials = run_sharded(shards, threads, |shard| {
        let (lo, hi) = range_of(shard);
        let mut t = DirectedTallies::default();
        for (user, ta) in &users[lo..hi] {
            let rated_b = idx_b.get(user).and_then(|tb| tb.rated_at);
            t.observe(ta, rated_b);
        }
        t
    });
    let mut total = DirectedTallies::default();
    for p in partials {
        total.absorb(p);
    }

    let q_0 = Estimate::from_counts(
        "q_{X|0}",
        total.rated_a_not_bfirst,
        total.informed_a_not_b_pre,
    )?;
    let q_cond = Estimate::from_counts("q_{X|Y}", total.rated_bfirst, total.b_pre_inform)?;
    Ok((q_0, q_cond))
}

/// Learn the four GAPs for the ordered pair `(item_a, item_b)` on one
/// worker thread. See [`learn_gaps_with`] for the parallel entry point.
pub fn learn_gaps(
    log: &ActionLog,
    item_a: ItemId,
    item_b: ItemId,
) -> Result<LearnedGaps, LogError> {
    learn_gaps_with(log, item_a, item_b, &GapLearnConfig::default())
}

/// Learn the four GAPs for the ordered pair `(item_a, item_b)`, tallying
/// per-user statistics across `cfg.threads` workers. Identical output for
/// every thread count (see the module docs).
pub fn learn_gaps_with(
    log: &ActionLog,
    item_a: ItemId,
    item_b: ItemId,
    cfg: &GapLearnConfig,
) -> Result<LearnedGaps, LogError> {
    if !log.has_item(item_a) {
        return Err(LogError::UnknownItem(item_a.0));
    }
    if !log.has_item(item_b) {
        return Err(LogError::UnknownItem(item_b.0));
    }
    let (q_a0, q_ab) = directed_counts(log, item_a, item_b, cfg.threads)?;
    let (q_b0, q_ba) = directed_counts(log, item_b, item_a, cfg.threads)?;
    Ok(LearnedGaps {
        q_a0,
        q_ab,
        q_b0,
        q_ba,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Action, LogRecord, UserId};

    fn rec(user: u32, item: u32, action: Action, t: u64) -> LogRecord {
        LogRecord {
            user: UserId(user),
            item: ItemId(item),
            action,
            t,
        }
    }

    #[test]
    fn hand_computed_example() {
        // Item A = 0, item B = 1.
        // user 0: informed A @1, rates A @2, never touches B  -> q_a0 success
        // user 1: informed A @1, no rating                    -> q_a0 failure
        // user 2: rates B @1, informed A @2, rates A @3       -> q_ab success
        // user 3: rates B @1, informed A @2, no A rating      -> q_ab failure
        let log = ActionLog::from_records(vec![
            rec(0, 0, Action::Informed, 1),
            rec(0, 0, Action::Rated, 2),
            rec(1, 0, Action::Informed, 1),
            rec(2, 1, Action::Rated, 1),
            rec(2, 0, Action::Informed, 2),
            rec(2, 0, Action::Rated, 3),
            rec(3, 1, Action::Rated, 1),
            rec(3, 0, Action::Informed, 2),
            // B side needs at least one informed-of-B user with no A first:
            rec(4, 1, Action::Informed, 1),
            rec(4, 1, Action::Rated, 2),
            // and one user who rated A before being informed of B:
            rec(5, 0, Action::Rated, 1),
            rec(5, 1, Action::Informed, 2),
            rec(5, 1, Action::Rated, 3),
        ]);
        let learned = learn_gaps(&log, ItemId(0), ItemId(1)).unwrap();
        // q_a0: users informed of A without prior B rating: 0, 1, 5 — wait,
        // user 5 rated A spontaneously (Rated implies Informed at t=1): that
        // is also a q_a0 success. Successes: 0, 5; failures: 1. 2/3.
        assert_eq!(learned.q_a0.samples, 3);
        assert!((learned.q_a0.value - 2.0 / 3.0).abs() < 1e-12);
        // q_ab: users 2 (success), 3 (failure): 1/2.
        assert_eq!(learned.q_ab.samples, 2);
        assert!((learned.q_ab.value - 0.5).abs() < 1e-12);
        // q_ba: user 5 rated A before B-inform and then rated B: 1/1.
        assert_eq!(learned.q_ba.samples, 1);
        assert!((learned.q_ba.value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_item_errors() {
        let log = ActionLog::from_records(vec![rec(0, 0, Action::Rated, 1)]);
        assert!(matches!(
            learn_gaps(&log, ItemId(0), ItemId(9)),
            Err(LogError::UnknownItem(9))
        ));
    }

    #[test]
    fn insufficient_data_errors() {
        // Item B present but nobody informed of it without A -> q_b0 starves?
        // Actually: nobody rated A before B-inform -> q_ba denominator = 0.
        let log = ActionLog::from_records(vec![
            rec(0, 0, Action::Informed, 1),
            rec(1, 1, Action::Informed, 1),
        ]);
        // q_ab starves: no user rated B before being informed of A.
        assert!(matches!(
            learn_gaps(&log, ItemId(0), ItemId(1)),
            Err(LogError::InsufficientData { .. })
        ));
    }

    #[test]
    fn estimate_interval_and_coverage() {
        let e = Estimate {
            value: 0.5,
            ci_half_width: 0.1,
            samples: 100,
        };
        assert_eq!(e.interval(), (0.4, 0.6));
        assert!(e.covers(0.45));
        assert!(!e.covers(0.7));
        let edge = Estimate {
            value: 0.99,
            ci_half_width: 0.05,
            samples: 10,
        };
        assert_eq!(edge.interval().1, 1.0);
    }

    /// Sum-based reduction: estimates are identical for every thread count.
    #[test]
    fn estimates_are_thread_count_invariant() {
        // A few hundred synthetic users with varied orderings.
        let mut records = Vec::new();
        for u in 0..600u32 {
            match u % 5 {
                0 => {
                    records.push(rec(u, 0, Action::Informed, 1));
                    records.push(rec(u, 0, Action::Rated, 2));
                }
                1 => records.push(rec(u, 0, Action::Informed, 1)),
                2 => {
                    records.push(rec(u, 1, Action::Rated, 1));
                    records.push(rec(u, 0, Action::Informed, 2));
                    records.push(rec(u, 0, Action::Rated, 3));
                }
                3 => {
                    records.push(rec(u, 1, Action::Rated, 1));
                    records.push(rec(u, 0, Action::Informed, 2));
                }
                _ => {
                    // Rated A spontaneously, then informed of (and rated) B:
                    // feeds the q_{B|A} denominator.
                    records.push(rec(u, 0, Action::Rated, 1));
                    records.push(rec(u, 1, Action::Informed, 2));
                    records.push(rec(u, 1, Action::Rated, 3));
                }
            }
        }
        let log = ActionLog::from_records(records);
        let base = learn_gaps_with(&log, ItemId(0), ItemId(1), &GapLearnConfig { threads: 1 })
            .expect("enough data");
        for threads in [2, 4, 7] {
            let l = learn_gaps_with(&log, ItemId(0), ItemId(1), &GapLearnConfig { threads })
                .expect("enough data");
            for (a, b) in [
                (base.q_a0, l.q_a0),
                (base.q_ab, l.q_ab),
                (base.q_b0, l.q_b0),
                (base.q_ba, l.q_ba),
            ] {
                assert_eq!(a, b, "threads = {threads}");
            }
        }
        // And the single-thread wrapper is the same computation.
        let via_wrapper = learn_gaps(&log, ItemId(0), ItemId(1)).unwrap();
        assert_eq!(via_wrapper.q_a0, base.q_a0);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let a = Estimate::from_counts("x", 50, 100).unwrap();
        let b = Estimate::from_counts("x", 500, 1000).unwrap();
        assert!(b.ci_half_width < a.ci_half_width);
        assert_eq!(a.value, b.value);
    }
}
