//! Timestamped user action logs.

use comic_graph::fasthash::FxHashMap;

/// A log user. Users need not be graph nodes (the synthetic generator can
/// mint a fresh cohort per diffusion session).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserId(pub u32);

/// An item (product/movie/book) appearing in the log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u32);

/// The two observable action kinds of §7.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Action {
    /// The user was informed of the item ("want to see", "not interested",
    /// wish-listing).
    Informed,
    /// The user adopted (rated) the item. Rating implies being informed, so
    /// a lone `Rated` record also counts as an informing event at the same
    /// timestamp.
    Rated,
}

/// One log record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Acting user.
    pub user: UserId,
    /// Item acted upon.
    pub item: ItemId,
    /// Kind of action.
    pub action: Action,
    /// Timestamp (any monotone clock; only order matters).
    pub t: u64,
}

/// First-occurrence times of a user's interactions with one item.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UserItemTimes {
    /// Earliest time the user was informed of the item (a rate also
    /// informs).
    pub informed_at: Option<u64>,
    /// Earliest time the user rated the item.
    pub rated_at: Option<u64>,
}

impl UserItemTimes {
    fn absorb(&mut self, action: Action, t: u64) {
        let min_opt = |cur: Option<u64>| Some(cur.map_or(t, |c| c.min(t)));
        match action {
            Action::Informed => self.informed_at = min_opt(self.informed_at),
            Action::Rated => {
                self.rated_at = min_opt(self.rated_at);
                self.informed_at = min_opt(self.informed_at);
            }
        }
    }
}

/// An action log: records plus lazily-built first-time indices.
#[derive(Clone, Debug, Default)]
pub struct ActionLog {
    records: Vec<LogRecord>,
}

impl ActionLog {
    /// Empty log.
    pub fn new() -> Self {
        ActionLog::default()
    }

    /// Build from records (sorted by time internally).
    pub fn from_records(mut records: Vec<LogRecord>) -> Self {
        records.sort_by_key(|r| (r.t, r.user, r.item));
        ActionLog { records }
    }

    /// Append one record (keeps the log sorted lazily; callers that push out
    /// of order should call [`ActionLog::sort`] before reading).
    pub fn push(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// Sort records by time (stable by user/item).
    pub fn sort(&mut self) {
        self.records.sort_by_key(|r| (r.t, r.user, r.item));
    }

    /// All records in time order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether any record mentions `item`.
    pub fn has_item(&self, item: ItemId) -> bool {
        self.records.iter().any(|r| r.item == item)
    }

    /// First-time index for one item: `user → (informed_at, rated_at)`.
    pub fn item_index(&self, item: ItemId) -> FxHashMap<UserId, UserItemTimes> {
        let mut idx: FxHashMap<UserId, UserItemTimes> = FxHashMap::default();
        for r in &self.records {
            if r.item == item {
                idx.entry(r.user).or_default().absorb(r.action, r.t);
            }
        }
        idx
    }

    /// Distinct items in the log.
    pub fn items(&self) -> Vec<ItemId> {
        let mut items: Vec<ItemId> = self.records.iter().map(|r| r.item).collect();
        items.sort_unstable();
        items.dedup();
        items
    }

    /// Distinct users in the log.
    pub fn users(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.records.iter().map(|r| r.user).collect();
        users.sort_unstable();
        users.dedup();
        users
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u32, item: u32, action: Action, t: u64) -> LogRecord {
        LogRecord {
            user: UserId(user),
            item: ItemId(item),
            action,
            t,
        }
    }

    #[test]
    fn from_records_sorts_by_time() {
        let log = ActionLog::from_records(vec![
            rec(1, 0, Action::Rated, 5),
            rec(0, 0, Action::Informed, 2),
        ]);
        assert_eq!(log.records()[0].t, 2);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn rating_implies_informed_at_same_time() {
        let log = ActionLog::from_records(vec![rec(0, 7, Action::Rated, 10)]);
        let idx = log.item_index(ItemId(7));
        let times = idx[&UserId(0)];
        assert_eq!(times.rated_at, Some(10));
        assert_eq!(times.informed_at, Some(10));
    }

    #[test]
    fn first_times_win() {
        let log = ActionLog::from_records(vec![
            rec(0, 1, Action::Informed, 4),
            rec(0, 1, Action::Informed, 2),
            rec(0, 1, Action::Rated, 9),
            rec(0, 1, Action::Rated, 7),
        ]);
        let t = log.item_index(ItemId(1))[&UserId(0)];
        assert_eq!(t.informed_at, Some(2));
        assert_eq!(t.rated_at, Some(7));
    }

    #[test]
    fn items_and_users_enumeration() {
        let log = ActionLog::from_records(vec![
            rec(3, 9, Action::Informed, 1),
            rec(1, 9, Action::Rated, 2),
            rec(1, 4, Action::Rated, 3),
        ]);
        assert_eq!(log.items(), vec![ItemId(4), ItemId(9)]);
        assert_eq!(log.users(), vec![UserId(1), UserId(3)]);
        assert!(log.has_item(ItemId(4)));
        assert!(!log.has_item(ItemId(5)));
    }

    #[test]
    fn index_separates_items() {
        let log = ActionLog::from_records(vec![
            rec(0, 1, Action::Rated, 1),
            rec(0, 2, Action::Informed, 2),
        ]);
        assert!(log.item_index(ItemId(1)).contains_key(&UserId(0)));
        let idx2 = log.item_index(ItemId(2));
        assert_eq!(idx2[&UserId(0)].rated_at, None);
    }
}
