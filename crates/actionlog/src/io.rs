//! Action-log serialization: a line-oriented text format so that fixture
//! logs can be committed next to fixture graphs and fed to the learners
//! without any synthesis step.
//!
//! Format: `#`-prefixed comment lines, then one record per line as
//! `t<TAB>user<TAB>item<TAB>action` with `action ∈ {informed, rated}`
//! (any whitespace between columns is accepted on read).

use crate::error::LogError;
use crate::log::{Action, ActionLog, ItemId, LogRecord, UserId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Write `log` in the text format, preceded by a small descriptive header.
pub fn write_log<W: Write>(log: &ActionLog, w: W) -> Result<(), LogError> {
    let mut out = BufWriter::new(w);
    (|| {
        writeln!(out, "# comic action log v1")?;
        writeln!(out, "# records {}", log.len())?;
        writeln!(out, "# t\tuser\titem\taction")?;
        for r in log.records() {
            let action = match r.action {
                Action::Informed => "informed",
                Action::Rated => "rated",
            };
            writeln!(out, "{}\t{}\t{}\t{}", r.t, r.user.0, r.item.0, action)?;
        }
        out.flush()
    })()
    .map_err(LogError::Io)
}

/// Read a log written by [`write_log`] (records are re-sorted by time, so
/// hand-edited files need not stay ordered).
pub fn read_log<R: Read>(r: R) -> Result<ActionLog, LogError> {
    let reader = BufReader::new(r);
    let mut records = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(LogError::Io)?;
        let line_num = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = trimmed.split_whitespace().collect();
        if toks.len() != 4 {
            return Err(LogError::Parse {
                line: line_num,
                msg: format!("expected 't user item action', got '{trimmed}'"),
            });
        }
        fn parse_num<T: std::str::FromStr>(
            tok: &str,
            what: &str,
            line: usize,
        ) -> Result<T, LogError> {
            tok.parse().map_err(|_| LogError::Parse {
                line,
                msg: format!("bad {what} '{tok}'"),
            })
        }
        let t: u64 = parse_num(toks[0], "timestamp", line_num)?;
        let user: u32 = parse_num(toks[1], "user id", line_num)?;
        let item: u32 = parse_num(toks[2], "item id", line_num)?;
        let action = match toks[3] {
            "informed" => Action::Informed,
            "rated" => Action::Rated,
            other => {
                return Err(LogError::Parse {
                    line: line_num,
                    msg: format!("bad action '{other}' (expected informed|rated)"),
                })
            }
        };
        records.push(LogRecord {
            user: UserId(user),
            item: ItemId(item),
            action,
            t,
        });
    }
    Ok(ActionLog::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(user: u32, item: u32, action: Action, t: u64) -> LogRecord {
        LogRecord {
            user: UserId(user),
            item: ItemId(item),
            action,
            t,
        }
    }

    #[test]
    fn roundtrip_preserves_records() {
        let log = ActionLog::from_records(vec![
            rec(3, 0, Action::Informed, 7),
            rec(1, 1, Action::Rated, 2),
            rec(2, 0, Action::Rated, 5),
        ]);
        let mut buf = Vec::new();
        write_log(&log, &mut buf).unwrap();
        let log2 = read_log(&buf[..]).unwrap();
        assert_eq!(log.records(), log2.records());
    }

    #[test]
    fn unsorted_input_is_sorted_on_read() {
        let src = "9\t0\t0\trated\n1\t1\t0\tinformed\n";
        let log = read_log(src.as_bytes()).unwrap();
        assert_eq!(log.records()[0].t, 1);
        assert_eq!(log.records()[1].t, 9);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let src = "# comic action log v1\n\n# records 1\n4\t2\t1\trated\n";
        let log = read_log(src.as_bytes()).unwrap();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records()[0].user, UserId(2));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        for (src, wants) in [
            ("1\t2\t3\n", "expected"),
            ("x\t2\t3\trated\n", "timestamp"),
            ("1\t2\t3\tpurchased\n", "action"),
            // u32 overflow must be rejected, not silently wrapped.
            ("1\t4294967297\t3\trated\n", "user id"),
        ] {
            match read_log(format!("# header\n{src}").as_bytes()) {
                Err(LogError::Parse { line, msg }) => {
                    assert_eq!(line, 2, "{src}");
                    assert!(msg.contains(wants), "{msg}");
                }
                other => panic!("expected parse error for {src:?}, got {other:?}"),
            }
        }
    }
}
