//! Edge influence-probability learning — the static Bernoulli model of
//! Goyal, Bonchi & Lakshmanan [12], which the paper uses to obtain the
//! `p(u, v)` of all its datasets.
//!
//! Under the static Bernoulli model, `p̂(u, v) = A_{u→v} / A_u`, where `A_u`
//! is the number of actions (item adoptions) performed by `u` and `A_{u→v}`
//! is the number of those actions that *propagated* to `v`: `v` performed
//! the same action strictly after `u` and within a propagation window τ,
//! and the social link `u → v` exists.

use crate::log::{ActionLog, UserId};
use comic_graph::fasthash::FxHashMap;
use comic_graph::{DiGraph, GraphBuilder, NodeId};

/// Configuration for [`learn_influence`].
#[derive(Clone, Copy, Debug)]
pub struct InfluenceLearnConfig {
    /// Propagation window τ: `v`'s action at `t_v` is credited to `u`'s at
    /// `t_u` iff `t_u < t_v ≤ t_u + tau`.
    pub tau: u64,
    /// Probability floor assigned to edges with no observations (keeps the
    /// learned graph usable for diffusion; the paper's pipelines do the
    /// same implicitly by falling back to weighted-cascade-style priors).
    pub default_p: f64,
}

impl Default for InfluenceLearnConfig {
    fn default() -> Self {
        InfluenceLearnConfig {
            tau: 1_000,
            default_p: 0.0,
        }
    }
}

/// Learn `p̂(u, v)` for every edge of `g` from `log`, returning a copy of
/// the graph with probabilities replaced. Users in the log must be graph
/// nodes (`UserId(x)` ↔ `NodeId(x)`); foreign users are ignored.
pub fn learn_influence(g: &DiGraph, log: &ActionLog, cfg: &InfluenceLearnConfig) -> DiGraph {
    let n = g.num_nodes();
    // Per (user, item) first adoption times.
    let mut adoption: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    let mut actions_per_user = vec![0u32; n];
    for r in log.records() {
        if let crate::log::Action::Rated = r.action {
            let UserId(u) = r.user;
            if (u as usize) < n {
                adoption
                    .entry((u, r.item.0))
                    .and_modify(|t| *t = (*t).min(r.t))
                    .or_insert(r.t);
            }
        }
    }
    for (&(u, _), _) in adoption.iter() {
        actions_per_user[u as usize] += 1;
    }

    // Credit propagations along existing edges.
    let mut propagated: FxHashMap<(u32, u32), u32> = FxHashMap::default();
    for (&(u, item), &tu) in adoption.iter() {
        for adj in g.out_edges(NodeId(u)) {
            let v = adj.node.0;
            if let Some(&tv) = adoption.get(&(v, item)) {
                if tu < tv && tv <= tu + cfg.tau {
                    *propagated.entry((u, v)).or_insert(0) += 1;
                }
            }
        }
    }

    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for (_, e) in g.edges() {
        let (u, v) = (e.source.0, e.target.0);
        let a_u = actions_per_user[u as usize];
        let p = if a_u == 0 {
            cfg.default_p
        } else {
            let a_uv = propagated.get(&(u, v)).copied().unwrap_or(0);
            (a_uv as f64 / a_u as f64).min(1.0)
        };
        b.add_edge(u, v, p.max(cfg.default_p).min(1.0));
    }
    b.build()
        .expect("probability relearning preserves topology")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Action, ItemId, LogRecord};
    use crate::synth::{synthesize_pair_log, SynthConfig};
    use comic_core::gap::Gap;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rated(user: u32, item: u32, t: u64) -> LogRecord {
        LogRecord {
            user: UserId(user),
            item: ItemId(item),
            action: Action::Rated,
            t,
        }
    }

    #[test]
    fn hand_computed_bernoulli() {
        // Edge 0 -> 1. User 0 adopts items {0, 1, 2}; user 1 follows on
        // items {0, 1} within the window, misses item 2.
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::from_records(vec![
            rated(0, 0, 10),
            rated(1, 0, 12),
            rated(0, 1, 100),
            rated(1, 1, 105),
            rated(0, 2, 200),
            rated(1, 2, 5_000), // outside tau
        ]);
        let learned = learn_influence(
            &g,
            &log,
            &InfluenceLearnConfig {
                tau: 50,
                default_p: 0.0,
            },
        );
        let p = learned.out_edges(NodeId(0)).next().unwrap().p;
        assert!((p - 2.0 / 3.0).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn no_credit_against_time_order() {
        // v adopts before u: no propagation credit.
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::from_records(vec![rated(1, 0, 5), rated(0, 0, 10)]);
        let learned = learn_influence(&g, &log, &InfluenceLearnConfig::default());
        assert_eq!(learned.out_edges(NodeId(0)).next().unwrap().p, 0.0);
    }

    #[test]
    fn default_floor_applies() {
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::new();
        let learned = learn_influence(
            &g,
            &log,
            &InfluenceLearnConfig {
                tau: 10,
                default_p: 0.01,
            },
        );
        assert_eq!(learned.out_edges(NodeId(0)).next().unwrap().p, 0.01);
    }

    /// End-to-end: cascades generated with constant edge probability are
    /// learned back to roughly that probability on active edges.
    #[test]
    fn recovers_constant_probability_roughly() {
        let mut grng = SmallRng::seed_from_u64(1);
        let topo = gen::gnm(40, 200, &mut grng).unwrap();
        let p_true = 0.45;
        let g = comic_graph::prob::ProbModel::Constant(p_true).apply(&topo, &mut grng);
        // Single-item cascades (classic-IC GAPs), users = graph nodes.
        let mut rng = SmallRng::seed_from_u64(2);
        let log = synthesize_pair_log(
            &g,
            Gap::classic_ic(),
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 600,
                seeds_per_item: 3,
                fresh_cohorts: false,
            },
            &mut rng,
        );
        // τ must cover any within-session gap (sequence-stamped events) but
        // stay below the 10⁹ session stride so credit never leaks across
        // sessions.
        let learned = learn_influence(
            &g,
            &log,
            &InfluenceLearnConfig {
                tau: 100_000,
                default_p: 0.0,
            },
        );
        // Average learned probability over edges with enough source actions
        // should sit near p_true (each source action gives the target one
        // independent p_true chance; estimator over/under-shoot comes from
        // alternative paths and co-seeding, so allow a loose band).
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for (_, e) in learned.edges() {
            if e.p > 0.0 {
                sum += e.p;
                cnt += 1;
            }
        }
        assert!(cnt > 50, "too few informative edges: {cnt}");
        let mean = sum / cnt as f64;
        assert!(
            (mean - p_true).abs() < 0.2,
            "mean learned p {mean} vs true {p_true}"
        );
    }
}
