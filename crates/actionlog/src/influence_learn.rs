//! Edge influence-probability learning — the static Bernoulli model of
//! Goyal, Bonchi & Lakshmanan [12], which the paper uses to obtain the
//! `p(u, v)` of all its datasets.
//!
//! Under the static Bernoulli model, `p̂(u, v) = A_{u→v} / A_u`, where `A_u`
//! is the number of actions (item adoptions) performed by `u` and `A_{u→v}`
//! is the number of those actions that *propagated* to `v`: `v` performed
//! the same action strictly after `u` and within a propagation window τ,
//! and the social link `u → v` exists.
//!
//! # Parallelism and determinism
//!
//! Credit distribution is independent per target node — whether `u`'s
//! adoption of an item propagated to `v` reads only `u`'s and `v`'s
//! first-adoption times — so the per-edge credit accumulation shards by
//! *target-node ranges* over `std::thread::scope` (via
//! [`comic_graph::par::run_sharded`]): each worker owns a fixed node range,
//! scans its nodes' in-edges against the shared first-adoption index, and
//! fills a private scratch list of `(edge, credit)` pairs. Shards are
//! merged in node order, and every credit is an exact integer count, so the
//! learned graph is **byte-identical for every
//! [`InfluenceLearnConfig::threads`] value** — the sequential result is
//! simply the `threads = 1` schedule of the same computation.

use crate::log::{ActionLog, UserId};
use comic_graph::par::{fixed_ranges, run_sharded};
use comic_graph::{DiGraph, GraphBuilder, NodeId};

/// Configuration for [`learn_influence`].
#[derive(Clone, Copy, Debug)]
pub struct InfluenceLearnConfig {
    /// Propagation window τ: `v`'s action at `t_v` is credited to `u`'s at
    /// `t_u` iff `t_u < t_v ≤ t_u + tau`.
    pub tau: u64,
    /// Probability floor assigned to edges with no observations (keeps the
    /// learned graph usable for diffusion; the paper's pipelines do the
    /// same implicitly by falling back to weighted-cascade-style priors).
    pub default_p: f64,
    /// Worker threads for the credit-accumulation pass (`0` = one per
    /// available core). The output is identical for every value — see the
    /// module docs.
    pub threads: usize,
}

impl Default for InfluenceLearnConfig {
    fn default() -> Self {
        InfluenceLearnConfig {
            tau: 1_000,
            default_p: 0.0,
            threads: 1,
        }
    }
}

/// Target nodes per credit-accumulation shard: fixed (thread-count
/// independent) so the shard decomposition, and with it the output bytes,
/// never depend on the worker count.
const NODES_PER_SHARD: usize = 1_024;

/// Per-node first-adoption index: for each graph node, the `(item, t)`
/// pairs of its earliest `Rated` records, sorted by item.
fn first_adoptions(g: &DiGraph, log: &ActionLog) -> Vec<Vec<(u32, u64)>> {
    let n = g.num_nodes();
    let mut events: Vec<(u32, u32, u64)> = log
        .records()
        .iter()
        .filter_map(|r| {
            let UserId(u) = r.user;
            (matches!(r.action, crate::log::Action::Rated) && (u as usize) < n)
                .then_some((u, r.item.0, r.t))
        })
        .collect();
    // First adoption wins: sort by (user, item, t) and keep the earliest
    // record per (user, item) — duplicate timestamps collapse to one entry.
    events.sort_unstable();
    events.dedup_by_key(|&mut (u, item, _)| (u, item));
    let mut adopt: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for (u, item, t) in events {
        adopt[u as usize].push((item, t));
    }
    adopt
}

/// Learn `p̂(u, v)` for every edge of `g` from `log`, returning a copy of
/// the graph with probabilities replaced. Users in the log must be graph
/// nodes (`UserId(x)` ↔ `NodeId(x)`); foreign users are ignored.
pub fn learn_influence(g: &DiGraph, log: &ActionLog, cfg: &InfluenceLearnConfig) -> DiGraph {
    let n = g.num_nodes();
    let adopt = first_adoptions(g, log);

    // Credit propagations along existing edges, sharded by target node.
    let (shards, range_of) = fixed_ranges(n, NODES_PER_SHARD);
    let locals = run_sharded(shards, cfg.threads, |shard| {
        let (lo, hi) = range_of(shard);
        let mut credit: Vec<(u32, u32)> = Vec::new();
        for v in lo..hi {
            let dst = &adopt[v];
            if dst.is_empty() {
                continue;
            }
            for adj in g.in_edges(NodeId(v as u32)) {
                let src = &adopt[adj.node.index()];
                if src.is_empty() {
                    continue;
                }
                // Items both endpoints adopted: sorted-merge the two lists
                // and test the propagation window on each match.
                let (mut i, mut j, mut hits) = (0usize, 0usize, 0u32);
                while i < src.len() && j < dst.len() {
                    match src[i].0.cmp(&dst[j].0) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            let (tu, tv) = (src[i].1, dst[j].1);
                            if tu < tv && tv <= tu.saturating_add(cfg.tau) {
                                hits += 1;
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
                if hits > 0 {
                    credit.push((adj.edge.0, hits));
                }
            }
        }
        credit
    });
    // Shards own disjoint target ranges, hence disjoint in-edge ids; the
    // merge is a plain scatter into the per-edge credit table.
    let mut credit = vec![0u32; g.num_edges()];
    for local in locals {
        for (edge, hits) in local {
            credit[edge as usize] = hits;
        }
    }

    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for (eid, e) in g.edges() {
        let (u, v) = (e.source.0, e.target.0);
        let a_u = adopt[u as usize].len() as u32;
        let p = if a_u == 0 {
            cfg.default_p
        } else {
            let a_uv = credit[eid.index()];
            (a_uv as f64 / a_u as f64).min(1.0)
        };
        b.add_edge(u, v, p.max(cfg.default_p).min(1.0));
    }
    b.build()
        .expect("probability relearning preserves topology")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{Action, ItemId, LogRecord};
    use crate::synth::{synthesize_pair_log, SynthConfig};
    use comic_core::gap::Gap;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rated(user: u32, item: u32, t: u64) -> LogRecord {
        LogRecord {
            user: UserId(user),
            item: ItemId(item),
            action: Action::Rated,
            t,
        }
    }

    #[test]
    fn hand_computed_bernoulli() {
        // Edge 0 -> 1. User 0 adopts items {0, 1, 2}; user 1 follows on
        // items {0, 1} within the window, misses item 2.
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::from_records(vec![
            rated(0, 0, 10),
            rated(1, 0, 12),
            rated(0, 1, 100),
            rated(1, 1, 105),
            rated(0, 2, 200),
            rated(1, 2, 5_000), // outside tau
        ]);
        let learned = learn_influence(
            &g,
            &log,
            &InfluenceLearnConfig {
                tau: 50,
                default_p: 0.0,
                threads: 1,
            },
        );
        let p = learned.out_edges(NodeId(0)).next().unwrap().p;
        assert!((p - 2.0 / 3.0).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn no_credit_against_time_order() {
        // v adopts before u: no propagation credit.
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::from_records(vec![rated(1, 0, 5), rated(0, 0, 10)]);
        let learned = learn_influence(&g, &log, &InfluenceLearnConfig::default());
        assert_eq!(learned.out_edges(NodeId(0)).next().unwrap().p, 0.0);
    }

    #[test]
    fn default_floor_applies() {
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::new();
        let learned = learn_influence(
            &g,
            &log,
            &InfluenceLearnConfig {
                tau: 10,
                default_p: 0.01,
                threads: 1,
            },
        );
        assert_eq!(learned.out_edges(NodeId(0)).next().unwrap().p, 0.01);
    }

    #[test]
    fn duplicate_timestamps_keep_the_first_adoption() {
        // Two Rated records for the same (user, item) at equal and later
        // times must collapse to one adoption at the earliest stamp.
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::from_records(vec![
            rated(0, 0, 10),
            rated(0, 0, 10),
            rated(0, 0, 90),
            rated(1, 0, 15),
            rated(1, 0, 15),
        ]);
        let learned = learn_influence(
            &g,
            &log,
            &InfluenceLearnConfig {
                tau: 20,
                default_p: 0.0,
                threads: 1,
            },
        );
        // One action by user 0, one propagation (10 -> 15 within tau).
        assert_eq!(learned.out_edges(NodeId(0)).next().unwrap().p, 1.0);
    }

    #[test]
    fn foreign_users_are_ignored() {
        let g = comic_graph::builder::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let log = ActionLog::from_records(vec![rated(0, 0, 1), rated(7, 0, 2), rated(1, 0, 3)]);
        let learned = learn_influence(&g, &log, &InfluenceLearnConfig::default());
        assert_eq!(learned.out_edges(NodeId(0)).next().unwrap().p, 1.0);
    }

    /// The determinism contract: the learned graph is byte-identical for
    /// every thread count, including the sequential `threads = 1` path.
    #[test]
    fn output_is_thread_count_invariant() {
        let mut grng = SmallRng::seed_from_u64(5);
        let topo = gen::gnm(60, 400, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.4).apply(&topo, &mut grng);
        let mut rng = SmallRng::seed_from_u64(6);
        let log = synthesize_pair_log(
            &g,
            Gap::classic_ic(),
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 80,
                seeds_per_item: 3,
                fresh_cohorts: false,
            },
            &mut rng,
        );
        let learn = |threads: usize| {
            learn_influence(
                &g,
                &log,
                &InfluenceLearnConfig {
                    tau: 100_000,
                    default_p: 0.0,
                    threads,
                },
            )
        };
        let base = comic_graph::io::graph_digest(&learn(1));
        for threads in [2, 4, 7] {
            assert_eq!(
                comic_graph::io::graph_digest(&learn(threads)),
                base,
                "threads = {threads}"
            );
        }
    }

    /// End-to-end: cascades generated with constant edge probability are
    /// learned back to roughly that probability on active edges.
    #[test]
    fn recovers_constant_probability_roughly() {
        let mut grng = SmallRng::seed_from_u64(1);
        let topo = gen::gnm(40, 200, &mut grng).unwrap();
        let p_true = 0.45;
        let g = comic_graph::prob::ProbModel::Constant(p_true).apply(&topo, &mut grng);
        // Single-item cascades (classic-IC GAPs), users = graph nodes.
        let mut rng = SmallRng::seed_from_u64(2);
        let log = synthesize_pair_log(
            &g,
            Gap::classic_ic(),
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 600,
                seeds_per_item: 3,
                fresh_cohorts: false,
            },
            &mut rng,
        );
        // τ must cover any within-session gap (sequence-stamped events) but
        // stay below the 10⁹ session stride so credit never leaks across
        // sessions.
        let learned = learn_influence(
            &g,
            &log,
            &InfluenceLearnConfig {
                tau: 100_000,
                default_p: 0.0,
                threads: 2,
            },
        );
        // Average learned probability over edges with enough source actions
        // should sit near p_true (each source action gives the target one
        // independent p_true chance; estimator over/under-shoot comes from
        // alternative paths and co-seeding, so allow a loose band).
        let mut sum = 0.0;
        let mut cnt = 0usize;
        for (_, e) in learned.edges() {
            if e.p > 0.0 {
                sum += e.p;
                cnt += 1;
            }
        }
        assert!(cnt > 50, "too few informative edges: {cnt}");
        let mean = sum / cnt as f64;
        assert!(
            (mean - p_true).abs() < 0.2,
            "mean learned p {mean} vs true {p_true}"
        );
    }
}
