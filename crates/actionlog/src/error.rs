//! Error type for action-log processing.

use std::fmt;

/// Errors from log construction and learning.
#[derive(Debug)]
pub enum LogError {
    /// Not enough observations to estimate a quantity; carries the name of
    /// the starved estimator and the observed sample count.
    InsufficientData {
        /// Which estimate could not be formed.
        what: String,
        /// How many samples were available.
        samples: usize,
    },
    /// An item id was absent from the log.
    UnknownItem(u32),
    /// An invalid configuration value.
    InvalidConfig(String),
    /// A parse error while reading a text log file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// An underlying I/O error.
    Io(std::io::Error),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::InsufficientData { what, samples } => {
                write!(f, "insufficient data for {what}: {samples} samples")
            }
            LogError::UnknownItem(i) => write!(f, "item {i} not present in the log"),
            LogError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            LogError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            LogError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = LogError::InsufficientData {
            what: "q_A|B".into(),
            samples: 3,
        };
        assert!(e.to_string().contains("q_A|B"));
        assert!(LogError::UnknownItem(7).to_string().contains("7"));
    }
}
