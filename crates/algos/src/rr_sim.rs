//! RR-SIM — RR-set generation for SelfInfMax (paper §6.2.1, Algorithm 2).
//!
//! Valid in the *one-way complementarity* regime (`q_{A|∅} ≤ q_{A|B}`,
//! `q_{B|∅} = q_{B|A}`), where B's diffusion is independent of A (Lemma 3)
//! and `σ_A` is self-submodular (Theorem 4). The sampler works in two
//! phases over one lazily-sampled possible world:
//!
//! 1. **Forward B-labeling** from the fixed B-seed set: a node is B-adopted
//!    iff it has a live path from `S_B` through nodes with
//!    `α_B ≤ q_{B|∅}`.
//! 2. **Backward BFS** from the root: a dequeued node is always a member of
//!    the RR-set; its in-neighbours are explored only if the node could
//!    adopt A *without* being the seed — i.e. `α_A ≤ q_{A|B}` when
//!    B-adopted, `α_A ≤ q_{A|∅}` otherwise (Theorem 7).

use comic_core::gap::Gap;
use comic_core::item::Item;
use comic_core::possible_world::LazyWorld;
use comic_graph::scratch::StampedSet;
use comic_graph::{DiGraph, NodeId};
use comic_ris::sampler::RrSampler;
use rand::Rng;

use crate::error::AlgoError;

/// The RR-SIM sampler (Algorithm 2).
pub struct RrSimSampler<'g> {
    g: &'g DiGraph,
    gap: Gap,
    seeds_b: Vec<NodeId>,
    world: LazyWorld,
    b_adopted: StampedSet,
    b_tested: StampedSet,
    visited: StampedSet,
    queue: Vec<NodeId>,
    last_width: u64,
}

impl<'g> RrSimSampler<'g> {
    /// Create a sampler; `gap` must satisfy one-way complementarity.
    pub fn new(g: &'g DiGraph, gap: Gap, seeds_b: Vec<NodeId>) -> Result<Self, AlgoError> {
        if !gap.is_one_way_complement() {
            return Err(AlgoError::UnsupportedRegime(format!(
                "RR-SIM requires q_A|0 <= q_A|B and q_B|0 == q_B|A, got {gap}"
            )));
        }
        for &s in &seeds_b {
            if s.index() >= g.num_nodes() {
                return Err(AlgoError::Model(comic_core::ModelError::SeedOutOfRange {
                    node: s.0,
                    n: g.num_nodes(),
                }));
            }
        }
        Ok(RrSimSampler {
            g,
            gap,
            seeds_b,
            world: LazyWorld::new(g.num_nodes(), g.num_edges()),
            b_adopted: StampedSet::new(g.num_nodes()),
            b_tested: StampedSet::new(g.num_nodes()),
            visited: StampedSet::new(g.num_nodes()),
            queue: Vec::new(),
            last_width: 0,
        })
    }

    /// The GAP vector in use.
    pub fn gap(&self) -> Gap {
        self.gap
    }

    /// Validate the regime and seed set once, then return an infallible
    /// per-thread sampler factory for the sharded
    /// [`comic_ris::RisPipeline`] (samplers own scratch state, so each
    /// worker needs its own instance).
    pub fn factory(
        g: &'g DiGraph,
        gap: Gap,
        seeds_b: &'g [NodeId],
    ) -> Result<impl Fn() -> RrSimSampler<'g> + Sync + 'g, AlgoError> {
        RrSimSampler::new(g, gap, seeds_b.to_vec())?;
        Ok(move || {
            RrSimSampler::new(g, gap, seeds_b.to_vec()).expect("validated RR-SIM construction")
        })
    }

    /// Phase II: forward B-labeling from `S_B` in the current world.
    /// A non-seed node adopts B iff reachable from `S_B` via live edges
    /// through B-adopting nodes and `α_B ≤ q_{B|∅}` (B is independent of A
    /// here, so no reconsideration can occur: ρ_B = 0).
    fn forward_label_b<R: Rng>(&mut self, world: &mut LazyWorld, rng: &mut R) {
        self.queue.clear();
        for i in 0..self.seeds_b.len() {
            let s = self.seeds_b[i];
            if self.b_adopted.insert(s.index()) {
                self.queue.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            for adj in self.g.out_edges(u) {
                let v = adj.node;
                if self.b_adopted.contains(v.index()) || self.b_tested.contains(v.index()) {
                    continue;
                }
                if world.edge_live(adj.edge, adj.p, rng) {
                    // First live inform: the node's single B-adoption test.
                    self.b_tested.insert(v.index());
                    if world.alpha(Item::B, v, rng) <= self.gap.q_b0 {
                        self.b_adopted.insert(v.index());
                        self.queue.push(v);
                    }
                }
            }
        }
    }

    /// Whether `u` can transition from A-informed to A-adopted in the
    /// current world, given its B status from the forward labeling.
    #[inline]
    fn passes_a<R: Rng>(&mut self, u: NodeId, world: &mut LazyWorld, rng: &mut R) -> bool {
        let q = if self.b_adopted.contains(u.index()) {
            self.gap.q_ab
        } else {
            self.gap.q_a0
        };
        world.alpha(Item::A, u, rng) <= q
    }

    /// Sample `R_W(root)` in the provided (already reset) world — exposed so
    /// validation code can replay the identical world through the
    /// brute-force reference sampler.
    pub fn sample_in_world<R: Rng>(
        &mut self,
        root: NodeId,
        world: &mut LazyWorld,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.b_adopted.clear();
        self.b_tested.clear();
        self.visited.clear();

        // Phase II: determine B adoption in this world.
        self.forward_label_b(world, rng);

        // Phase III: backward BFS. Every dequeued node joins the RR-set
        // (its width contribution is tallied here, while the in-CSR offsets
        // are hot); expansion continues only through nodes that pass their
        // A test.
        self.queue.clear();
        self.visited.insert(root.index());
        self.queue.push(root);
        let mut width: u64 = 0;
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            out.push(u);
            width += self.g.in_degree(u) as u64;
            if !self.passes_a(u, world, rng) {
                // u can only be A-adopted as the seed itself (Case 1(ii)/2(ii)).
                continue;
            }
            for adj in self.g.in_edges(u) {
                let w = adj.node;
                if !self.visited.contains(w.index()) && world.edge_live(adj.edge, adj.p, rng) {
                    self.visited.insert(w.index());
                    self.queue.push(w);
                }
            }
        }
        self.last_width = width;
    }
}

impl RrSampler for RrSimSampler<'_> {
    fn graph(&self) -> &DiGraph {
        self.g
    }

    fn sample<R: Rng>(&mut self, root: NodeId, rng: &mut R, out: &mut Vec<NodeId>) {
        // Detach the owned world to satisfy the borrow checker, then restore.
        let mut world = std::mem::replace(&mut self.world, LazyWorld::new(0, 0));
        world.reset();
        self.sample_in_world(root, &mut world, rng, out);
        self.world = world;
    }

    fn sample_with_width<R: Rng>(
        &mut self,
        root: NodeId,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) -> u64 {
        self.sample(root, rng, out);
        self.last_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_core::seeds::seeds;
    use comic_graph::builder::from_edges;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gap_one_way() -> Gap {
        Gap::new(0.3, 0.9, 0.5, 0.5).unwrap()
    }

    #[test]
    fn rejects_non_one_way_gaps() {
        let g = gen::path(3, 1.0);
        assert!(RrSimSampler::new(&g, Gap::new(0.3, 0.9, 0.5, 0.8).unwrap(), vec![]).is_err());
        assert!(RrSimSampler::new(&g, Gap::new(0.9, 0.3, 0.5, 0.5).unwrap(), vec![]).is_err());
        assert!(RrSimSampler::new(&g, gap_one_way(), vec![]).is_ok());
    }

    #[test]
    fn rejects_out_of_range_b_seeds() {
        let g = gen::path(3, 1.0);
        assert!(RrSimSampler::new(&g, gap_one_way(), seeds(&[7])).is_err());
    }

    #[test]
    fn root_is_always_a_member() {
        let mut grng = SmallRng::seed_from_u64(1);
        let g = gen::gnm(30, 120, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.4).apply(&g, &mut grng);
        let mut s = RrSimSampler::new(&g, gap_one_way(), seeds(&[0, 1])).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        for v in g.nodes() {
            s.sample(v, &mut rng, &mut out);
            assert!(out.contains(&v));
        }
    }

    #[test]
    fn members_are_distinct_and_backward_reachable() {
        use rand::RngExt;
        let mut grng = SmallRng::seed_from_u64(3);
        let g = gen::gnm(40, 200, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.5).apply(&g, &mut grng);
        let mut s = RrSimSampler::new(&g, gap_one_way(), seeds(&[5])).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut out = Vec::new();
        let reach_all = |root: NodeId| {
            comic_graph::traversal::reachable(
                &g,
                &[root],
                comic_graph::traversal::Direction::Backward,
            )
        };
        for _ in 0..200 {
            let root = NodeId(rng.random_range(0..40));
            s.sample(root, &mut rng, &mut out);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len(), "duplicates in RR-set");
            let reach = reach_all(root);
            for v in &out {
                assert!(reach.contains(v), "{v} not backward-reachable from {root}");
            }
        }
    }

    #[test]
    fn width_accumulated_during_bfs_matches_indegree_sum() {
        use rand::RngExt;
        let mut grng = SmallRng::seed_from_u64(11);
        let g = gen::gnm(40, 200, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.5).apply(&g, &mut grng);
        let mut s = RrSimSampler::new(&g, gap_one_way(), seeds(&[2, 3])).unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut out = Vec::new();
        for _ in 0..200 {
            let root = NodeId(rng.random_range(0..40));
            let w = s.sample_with_width(root, &mut rng, &mut out);
            let expect: u64 = out.iter().map(|&v| g.in_degree(v) as u64).sum();
            assert_eq!(w, expect);
        }
    }

    #[test]
    fn complementarity_enlarges_rr_sets() {
        // With B seeded everywhere relevant and q_{A|B} >> q_{A|∅}, RR-sets
        // should on average be larger than with no B-seeds at all.
        let mut grng = SmallRng::seed_from_u64(5);
        let g = gen::gnm(60, 350, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.6).apply(&g, &mut grng);
        let gap = Gap::new(0.1, 0.95, 0.9, 0.9).unwrap();
        let b_all: Vec<NodeId> = (0..10).map(NodeId).collect();
        let mut with_b = RrSimSampler::new(&g, gap, b_all).unwrap();
        let mut without_b = RrSimSampler::new(&g, gap, vec![]).unwrap();
        let mut rng = SmallRng::seed_from_u64(6);
        let mut out = Vec::new();
        let mut size_with = 0usize;
        let mut size_without = 0usize;
        for _ in 0..2000 {
            let root = with_b.random_root(&mut rng);
            with_b.sample(root, &mut rng, &mut out);
            size_with += out.len();
            without_b.sample(root, &mut rng, &mut out);
            size_without += out.len();
        }
        assert!(
            size_with > size_without,
            "complementary B-seeds should enlarge RR-sets: {size_with} vs {size_without}"
        );
    }

    /// Replay-based validation against the brute-force Definition-1
    /// reference: in the *same* possible world, Algorithm 2 must produce
    /// exactly the set of nodes whose solo A-seeding makes the root adopt A.
    #[test]
    fn matches_definition_one_reference_per_world() {
        use crate::reference::reference_rr_sim;
        use rand::RngExt;
        let mut grng = SmallRng::seed_from_u64(8);
        for (gi, gap) in [
            gap_one_way(),
            Gap::new(0.0, 1.0, 0.6, 0.6).unwrap(),
            Gap::new(0.5, 0.5, 0.3, 0.3).unwrap(), // A indifferent to B too
        ]
        .into_iter()
        .enumerate()
        {
            let topo = gen::gnm(15, 50, &mut grng).unwrap();
            let g = comic_graph::prob::ProbModel::Constant(0.6).apply(&topo, &mut grng);
            let b_seeds = seeds(&[2, 3]);
            let mut sampler = RrSimSampler::new(&g, gap, b_seeds.clone()).unwrap();
            let mut rng = SmallRng::seed_from_u64(80 + gi as u64);
            let mut world = LazyWorld::new(g.num_nodes(), g.num_edges());
            let mut out = Vec::new();
            for trial in 0..400 {
                let root = NodeId(rng.random_range(0..g.num_nodes() as u32));
                world.reset();
                sampler.sample_in_world(root, &mut world, &mut rng, &mut out);
                let reference = reference_rr_sim(&g, gap, &b_seeds, root, &mut world, &mut rng);
                let mut alg = out.clone();
                alg.sort_unstable();
                assert_eq!(
                    alg, reference,
                    "gap {gi} trial {trial} root {root}: RR-SIM deviates from Definition 1"
                );
            }
        }
    }

    #[test]
    fn path_rr_set_distribution_closed_form() {
        // Path 0 -> 1 -> 2 with certain edges, no B seeds, q_{A|∅} = q.
        // RR(2) contains 1 iff α_1^A... no: RR(2) = {2} ∪ {1 if 2 passes}
        // ∪ {0 if 2 and 1 pass}: P(|R|≥2) = q, P(|R|=3) = q².
        let g = from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let q = 0.6;
        let gap = Gap::new(q, q, 0.5, 0.5).unwrap();
        let mut s = RrSimSampler::new(&g, gap, vec![]).unwrap();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut out = Vec::new();
        let trials = 60_000;
        let (mut ge2, mut eq3) = (0usize, 0usize);
        for _ in 0..trials {
            s.sample(NodeId(2), &mut rng, &mut out);
            if out.len() >= 2 {
                ge2 += 1;
            }
            if out.len() == 3 {
                eq3 += 1;
            }
        }
        let p2 = ge2 as f64 / trials as f64;
        let p3 = eq3 as f64 / trials as f64;
        assert!((p2 - q).abs() < 0.01, "P(|R|>=2) = {p2}, want {q}");
        assert!((p3 - q * q).abs() < 0.01, "P(|R|=3) = {p3}, want {}", q * q);
    }
}
