//! Error type for the algorithms crate.

use std::fmt;

/// Errors from seed-selection algorithms.
#[derive(Debug)]
pub enum AlgoError {
    /// The GAP vector is outside the regime the requested algorithm
    /// supports (e.g. RR-SIM without one-way complementarity).
    UnsupportedRegime(String),
    /// Underlying RIS framework error.
    Ris(comic_ris::RisError),
    /// Underlying model error.
    Model(comic_core::ModelError),
    /// A structurally invalid request.
    InvalidRequest(String),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::UnsupportedRegime(msg) => write!(f, "unsupported GAP regime: {msg}"),
            AlgoError::Ris(e) => write!(f, "ris: {e}"),
            AlgoError::Model(e) => write!(f, "model: {e}"),
            AlgoError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgoError::Ris(e) => Some(e),
            AlgoError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<comic_ris::RisError> for AlgoError {
    fn from(e: comic_ris::RisError) -> Self {
        AlgoError::Ris(e)
    }
}

impl From<comic_core::ModelError> for AlgoError {
    fn from(e: comic_core::ModelError) -> Self {
        AlgoError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: AlgoError = comic_ris::RisError::KTooLarge { k: 9, n: 3 }.into();
        assert!(e.to_string().contains("9"));
        let e = AlgoError::UnsupportedRegime("x".into());
        assert!(e.to_string().contains("x"));
    }
}
