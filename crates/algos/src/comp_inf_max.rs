//! CompInfMax (Problem 2): pick `k` B-seeds maximizing the *boost*
//! `σ_A(S_A, S_B) − σ_A(S_A, ∅)` for a fixed A-seed set under mutual
//! complementarity.

use comic_core::gap::{Gap, Regime};
use comic_core::seeds::SeedPair;
use comic_core::spread::SpreadEstimator;
use comic_graph::{DiGraph, NodeId};
use comic_ris::select::SelectorKind;
use comic_ris::tim::{TimConfig, TimResult};
use comic_ris::RisPipeline;
use rand::{Rng, RngExt};

use crate::error::AlgoError;
use crate::greedy::{greedy_comp_inf_max, GreedyConfig};
use crate::rr_cim::RrCimSampler;
use crate::sandwich::{solve_sandwich, SandwichCandidate};
use crate::self_inf_max::{Solution, Strategy};

/// CompInfMax solver (builder-style).
///
/// # Example
/// ```
/// use comic_algos::CompInfMax;
/// use comic_core::Gap;
/// use comic_core::seeds::seeds;
/// use comic_graph::gen;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// // A star whose hub seeds A with q_{A|∅} low: boosting works by seeding
/// // B where A's information already reaches.
/// let g = gen::star(40, 0.8);
/// let gap = Gap::new(0.2, 0.9, 0.6, 1.0).unwrap(); // q_{B|A} = 1: direct
/// let mut rng = SmallRng::seed_from_u64(1);
/// let sol = CompInfMax::new(&g, gap, seeds(&[0]))
///     .eval_iterations(2000)
///     .solve(1, &mut rng)
///     .unwrap();
/// assert_eq!(sol.seeds.len(), 1);
/// ```
pub struct CompInfMax<'g> {
    g: &'g DiGraph,
    gap: Gap,
    seeds_a: Vec<NodeId>,
    epsilon: f64,
    ell: f64,
    max_rr_sets: Option<u64>,
    eval_iterations: usize,
    threads: usize,
    selector: SelectorKind,
    with_greedy_candidate: Option<GreedyConfig>,
}

impl<'g> CompInfMax<'g> {
    /// New solver for graph `g`, GAPs `gap`, and the fixed A-seed set.
    pub fn new(g: &'g DiGraph, gap: Gap, seeds_a: Vec<NodeId>) -> Self {
        CompInfMax {
            g,
            gap,
            seeds_a,
            epsilon: 0.5,
            ell: 1.0,
            max_rr_sets: None,
            eval_iterations: 10_000,
            threads: 0,
            selector: SelectorKind::default(),
            with_greedy_candidate: None,
        }
    }

    /// Set ε (default 0.5).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Set ℓ (default 1).
    pub fn ell(mut self, ell: f64) -> Self {
        self.ell = ell;
        self
    }

    /// Cap θ (forfeits the approximation guarantee when hit).
    pub fn max_rr_sets(mut self, cap: u64) -> Self {
        self.max_rr_sets = Some(cap);
        self
    }

    /// Monte-Carlo iterations for candidate evaluation (default 10,000).
    pub fn eval_iterations(mut self, iters: usize) -> Self {
        self.eval_iterations = iters;
        self
    }

    /// Worker threads for RR-set generation and MC evaluations
    /// (0 = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Max-coverage strategy for the pipeline's selection phase (default
    /// CELF; selectors return identical seed sets, so this is a
    /// performance knob).
    pub fn selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// Also run MC greedy on the true boost as a sandwich candidate.
    pub fn with_greedy_candidate(mut self, cfg: GreedyConfig) -> Self {
        self.with_greedy_candidate = Some(cfg);
        self
    }

    fn tim_config(&self, k: usize, seed: u64) -> TimConfig {
        let mut cfg = TimConfig::new(k)
            .epsilon(self.epsilon)
            .seed(seed)
            .selector(self.selector);
        cfg.ell = self.ell;
        cfg.max_rr_sets = self.max_rr_sets;
        cfg.threads = self.threads;
        cfg
    }

    /// One pipeline run with per-thread RR-CIM samplers under `gap`.
    fn run_tim(&self, gap: Gap, k: usize, seed: u64) -> Result<TimResult, AlgoError> {
        Ok(
            RisPipeline::new(self.tim_config(k, seed)).run(RrCimSampler::factory(
                self.g,
                gap,
                &self.seeds_a,
            )?)?,
        )
    }

    /// MC estimate of the boost `σ_A(S_A, seeds) − σ_A(S_A, ∅)` under `gap`.
    fn boost(&self, gap: Gap, seeds_b: &[NodeId], seed: u64) -> f64 {
        let est = SpreadEstimator::new(self.g, gap);
        let sp = SeedPair::new(self.seeds_a.clone(), seeds_b.to_vec());
        est.estimate_boost(&sp, self.eval_iterations, seed, self.threads)
    }

    /// Solve for `k` B-seeds.
    ///
    /// * `q_{B|A} = 1`: direct GeneralTIM with RR-CIM (Theorem 8).
    /// * General `Q⁺`: sandwich with the upper surrogate `q_{B|A} → 1`
    ///   (§6.4; no lower surrogate exists for CompInfMax, matching the
    ///   paper, which "disregards S_µ" here).
    pub fn solve<R: Rng>(&self, k: usize, rng: &mut R) -> Result<Solution, AlgoError> {
        if self.gap.regime() != Regime::MutualComplement {
            return Err(AlgoError::UnsupportedRegime(format!(
                "CompInfMax is defined for mutual complementarity (Q+); got {}",
                self.gap
            )));
        }
        let seed: u64 = rng.random();

        if self.gap.is_cim_submodular() {
            let tim = self.run_tim(self.gap, k, seed)?;
            let objective = self.boost(self.gap, &tim.seeds, seed ^ 1);
            return Ok(Solution {
                seeds: tim.seeds.clone(),
                objective,
                strategy: Strategy::Direct,
                tim,
                sandwich: None,
            });
        }

        // Sandwich upper bound: raise q_{B|A} to 1 (Theorem 10 monotonicity).
        let nu_gap = self.gap.with_q_ba(1.0)?;
        let tim_nu = self.run_tim(nu_gap, k, seed)?;

        let mut candidates = vec![SandwichCandidate {
            name: "nu",
            objective: self.boost(self.gap, &tim_nu.seeds, seed ^ 3),
            seeds: tim_nu.seeds.clone(),
        }];
        if let Some(gcfg) = &self.with_greedy_candidate {
            let gr = greedy_comp_inf_max(self.g, self.gap, &self.seeds_a, k, gcfg);
            candidates.push(SandwichCandidate {
                name: "sigma",
                objective: self.boost(self.gap, &gr.seeds, seed ^ 3),
                seeds: gr.seeds,
            });
        }
        let nu_value = self.boost(nu_gap, &tim_nu.seeds, seed ^ 4);
        let ratio = if nu_value > 0.0 {
            candidates[0].objective / nu_value
        } else {
            1.0
        };
        Ok(solve_sandwich(candidates, ratio, vec![("nu", tim_nu)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_core::seeds::seeds;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_q_plus() {
        let g = gen::path(4, 1.0);
        let gap = Gap::new(0.8, 0.2, 0.9, 0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            CompInfMax::new(&g, gap, seeds(&[0])).solve(1, &mut rng),
            Err(AlgoError::UnsupportedRegime(_))
        ));
    }

    #[test]
    fn direct_route_when_q_ba_is_one() {
        // Two disjoint certain stars, A seeded at hub 0: the only useful
        // B-seeds live inside star 0 (boost elsewhere is zero).
        let mut b = comic_graph::GraphBuilder::new(40);
        for v in 1..20u32 {
            b.add_edge(0, v, 1.0);
        }
        for v in 21..40u32 {
            b.add_edge(20, v, 1.0);
        }
        let g = b.build().unwrap();
        let gap = Gap::new(0.2, 1.0, 1.0, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let sol = CompInfMax::new(&g, gap, seeds(&[0]))
            .eval_iterations(3000)
            .threads(1)
            .solve(1, &mut rng)
            .unwrap();
        assert_eq!(sol.strategy, Strategy::Direct);
        assert!(
            sol.seeds[0].0 < 20,
            "picked {} outside A's star",
            sol.seeds[0]
        );
        assert!(sol.objective > 0.0);
    }

    #[test]
    fn sandwich_route_when_q_ba_below_one() {
        let mut grng = SmallRng::seed_from_u64(3);
        let topo = gen::gnm(60, 360, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.3).apply(&topo, &mut grng);
        let gap = Gap::new(0.1, 0.9, 0.4, 0.8).unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let sol = CompInfMax::new(&g, gap, seeds(&[0, 1, 2]))
            .eval_iterations(3000)
            .threads(1)
            .solve(2, &mut rng)
            .unwrap();
        assert_eq!(sol.strategy, Strategy::Sandwich);
        assert_eq!(sol.seeds.len(), 2);
        let report = sol.sandwich.unwrap();
        assert_eq!(report.candidates[0].name, "nu");
        assert!(report.upper_bound_ratio > 0.0);
    }

    #[test]
    fn selector_choice_is_invisible_in_solutions() {
        // RR-CIM through the pipeline: CELF and the naive oracle must
        // return byte-identical B-seed sets for a fixed (seed, threads).
        let mut grng = SmallRng::seed_from_u64(8);
        let topo = gen::gnm(80, 480, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.3).apply(&topo, &mut grng);
        let gap = Gap::new(0.2, 0.9, 0.6, 1.0).unwrap(); // q_{B|A} = 1: direct
        let solve = |selector| {
            let mut rng = SmallRng::seed_from_u64(44);
            CompInfMax::new(&g, gap, seeds(&[0, 1]))
                .eval_iterations(500)
                .threads(2)
                .max_rr_sets(20_000)
                .selector(selector)
                .solve(3, &mut rng)
                .unwrap()
        };
        let celf = solve(SelectorKind::Celf);
        let naive = solve(SelectorKind::NaiveGreedy);
        assert_eq!(celf.seeds, naive.seeds);
        assert_eq!(celf.tim.covered, naive.tim.covered);
    }

    #[test]
    fn zero_boost_when_b_cannot_help() {
        // A's component is unreachable from anywhere B could matter:
        // disconnected singleton A-seed.
        let g = comic_graph::builder::from_edges(5, &[(1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let gap = Gap::new(0.3, 0.9, 0.5, 1.0).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let sol = CompInfMax::new(&g, gap, seeds(&[0]))
            .eval_iterations(2000)
            .threads(1)
            .solve(1, &mut rng)
            .unwrap();
        assert!(
            sol.objective.abs() < 0.05,
            "no boost is possible, got {}",
            sol.objective
        );
    }
}
