//! CELF-accelerated Monte-Carlo greedy — the paper's `Greedy` baseline
//! (Kempe et al. [15] with lazy-forward evaluation, 10K simulations per
//! spread estimate in §7.3).

use comic_core::gap::Gap;
use comic_core::seeds::SeedPair;
use comic_core::spread::SpreadEstimator;
use comic_graph::{DiGraph, NodeId};

/// Configuration for the Monte-Carlo greedy algorithms.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// Monte-Carlo iterations per spread evaluation (paper: 10,000).
    pub mc_iterations: usize,
    /// RNG seed; the same stream is reused for every evaluation so that
    /// marginal comparisons benefit from common random numbers.
    pub seed: u64,
    /// Worker threads per evaluation (0 = all cores).
    pub threads: usize,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            mc_iterations: 10_000,
            seed: 0x9e3779b9,
            threads: 0,
        }
    }
}

/// Result of a greedy run.
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// Selected seeds in pick order.
    pub seeds: Vec<NodeId>,
    /// Objective value after each pick (cumulative, starting from f(∅)).
    pub trajectory: Vec<f64>,
    /// Number of objective evaluations performed (CELF's savings metric).
    pub evaluations: usize,
}

/// Total-order wrapper so `f64` gains can live in a max-heap.
#[derive(Clone, Copy, PartialEq, Debug)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// CELF lazy-forward greedy over an arbitrary set objective.
///
/// `eval(S)` returns the objective `f(S)`; candidates are drawn from
/// `candidates`. For monotone submodular `f`, the output is identical to
/// naive greedy while performing far fewer evaluations: a candidate's stale
/// cached gain is an upper bound on its fresh gain, so a popped candidate
/// whose cache is current is provably the argmax.
pub fn celf<F>(candidates: &[NodeId], k: usize, mut eval: F) -> GreedyResult
where
    F: FnMut(&[NodeId]) -> f64,
{
    use std::collections::BinaryHeap;
    let mut evaluations = 0usize;
    let mut eval_counted = |s: &[NodeId]| {
        evaluations += 1;
        eval(s)
    };
    let base = eval_counted(&[]);
    // Max-heap on (cached gain, Reverse(node id)): among equal gains the
    // smallest node id pops first, so tie-breaking is stable by id — the
    // same rule as the RIS coverage selectors in `comic_ris::select`.
    let mut heap: BinaryHeap<(OrdF64, std::cmp::Reverse<NodeId>, u32)> = BinaryHeap::new();
    let mut buf: Vec<NodeId> = Vec::with_capacity(k + 1);
    for &v in candidates {
        buf.clear();
        buf.push(v);
        let gain = eval_counted(&buf) - base;
        // Round tag encodes the selection size the gain was computed at.
        heap.push((OrdF64(gain), std::cmp::Reverse(v), 0));
    }

    let mut selected: Vec<NodeId> = Vec::with_capacity(k);
    let mut trajectory = vec![base];
    let mut current = base;
    while selected.len() < k {
        let Some((OrdF64(gain), std::cmp::Reverse(v), round)) = heap.pop() else {
            break;
        };
        if round as usize == selected.len() {
            selected.push(v);
            current += gain;
            trajectory.push(current);
        } else {
            buf.clear();
            buf.extend_from_slice(&selected);
            buf.push(v);
            let fresh = eval_counted(&buf) - current;
            heap.push((OrdF64(fresh), std::cmp::Reverse(v), selected.len() as u32));
        }
    }

    GreedyResult {
        seeds: selected,
        trajectory,
        evaluations,
    }
}

/// Greedy for **SelfInfMax**: maximize `σ_A(S_A, S_B)` with `S_B` fixed.
pub fn greedy_self_inf_max(
    g: &DiGraph,
    gap: Gap,
    seeds_b: &[NodeId],
    k: usize,
    cfg: &GreedyConfig,
) -> GreedyResult {
    let est = SpreadEstimator::new(g, gap);
    let candidates: Vec<NodeId> = g.nodes().collect();
    celf(&candidates, k, |s| {
        let sp = SeedPair::new(s.to_vec(), seeds_b.to_vec());
        est.estimate_parallel(&sp, cfg.mc_iterations, cfg.seed, cfg.threads)
            .sigma_a
    })
}

/// Greedy for **CompInfMax**: maximize `σ_A(S_A, S_B) − σ_A(S_A, ∅)` with
/// `S_A` fixed (the constant baseline term does not affect the argmax, so
/// the objective evaluated is simply `σ_A(S_A, ·)`).
pub fn greedy_comp_inf_max(
    g: &DiGraph,
    gap: Gap,
    seeds_a: &[NodeId],
    k: usize,
    cfg: &GreedyConfig,
) -> GreedyResult {
    let est = SpreadEstimator::new(g, gap);
    let candidates: Vec<NodeId> = g.nodes().collect();
    celf(&candidates, k, |s| {
        let sp = SeedPair::new(seeds_a.to_vec(), s.to_vec());
        est.estimate_parallel(&sp, cfg.mc_iterations, cfg.seed, cfg.threads)
            .sigma_a
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_core::seeds::seeds;
    use comic_graph::gen;

    /// A deterministic monotone submodular objective: weighted coverage.
    fn coverage_objective(sets: Vec<(f64, Vec<u32>)>) -> impl FnMut(&[NodeId]) -> f64 {
        move |s: &[NodeId]| {
            sets.iter()
                .filter(|(_, members)| members.iter().any(|&m| s.contains(&NodeId(m))))
                .map(|(w, _)| w)
                .sum()
        }
    }

    fn naive_greedy<F: FnMut(&[NodeId]) -> f64>(
        candidates: &[NodeId],
        k: usize,
        mut eval: F,
    ) -> Vec<NodeId> {
        let mut selected: Vec<NodeId> = Vec::new();
        for _ in 0..k {
            let cur = eval(&selected);
            let mut best: Option<(f64, NodeId)> = None;
            for &v in candidates {
                if selected.contains(&v) {
                    continue;
                }
                let mut trial = selected.clone();
                trial.push(v);
                let gain = eval(&trial) - cur;
                if best.is_none_or(|(bg, bv)| gain > bg || (gain == bg && v < bv)) {
                    best = Some((gain, v));
                }
            }
            selected.push(best.expect("candidates available").1);
        }
        selected
    }

    #[test]
    fn celf_matches_naive_greedy_value_on_coverage() {
        let sets = vec![
            (3.0, vec![0, 1]),
            (2.0, vec![1, 2]),
            (2.0, vec![2]),
            (1.0, vec![3]),
            (5.0, vec![4, 0]),
        ];
        let candidates: Vec<NodeId> = (0..5u32).map(NodeId).collect();
        let celf_r = celf(&candidates, 3, coverage_objective(sets.clone()));
        let naive = naive_greedy(&candidates, 3, coverage_objective(sets.clone()));
        // Tie-breaking may differ; the achieved objective must match.
        let mut f1 = coverage_objective(sets.clone());
        let mut f2 = coverage_objective(sets);
        assert_eq!(f1(&celf_r.seeds), f2(&naive));
        assert_eq!(celf_r.trajectory.len(), 4);
        assert!(celf_r.trajectory.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn celf_saves_evaluations() {
        // 50 candidates, k=5: naive would need 1 + 50 + 49 + ... evals;
        // CELF should use far fewer than naive's ~246.
        let sets: Vec<(f64, Vec<u32>)> = (0..50u32)
            .map(|i| (1.0 + (i % 7) as f64, vec![i]))
            .collect();
        let candidates: Vec<NodeId> = (0..50u32).map(NodeId).collect();
        let r = celf(&candidates, 5, coverage_objective(sets));
        assert_eq!(r.seeds.len(), 5);
        assert!(
            r.evaluations < 100,
            "CELF used {} evaluations — laziness broken?",
            r.evaluations
        );
    }

    #[test]
    fn greedy_sim_finds_the_hub() {
        let g = gen::star(40, 1.0);
        let gap = Gap::new(0.8, 0.9, 0.5, 0.9).unwrap();
        let cfg = GreedyConfig {
            mc_iterations: 2000,
            seed: 5,
            threads: 1,
        };
        let r = greedy_self_inf_max(&g, gap, &seeds(&[1]), 1, &cfg);
        assert_eq!(r.seeds, vec![NodeId(0)]);
    }

    #[test]
    fn greedy_cim_prefers_boosting_near_a_seeds() {
        // Two disjoint certain stars; A seeded at hub 0. B-seeds only boost
        // where A already reaches, so greedy must pick within star 0.
        let mut b = comic_graph::GraphBuilder::new(40);
        for v in 1..20u32 {
            b.add_edge(0, v, 1.0);
        }
        for v in 21..40u32 {
            b.add_edge(20, v, 1.0);
        }
        let g = b.build().unwrap();
        let gap = Gap::new(0.2, 1.0, 1.0, 1.0).unwrap();
        let cfg = GreedyConfig {
            mc_iterations: 3000,
            seed: 6,
            threads: 1,
        };
        let r = greedy_comp_inf_max(&g, gap, &seeds(&[0]), 1, &cfg);
        assert_eq!(r.seeds.len(), 1);
        let v = r.seeds[0].0;
        assert!(v < 20, "picked {v}, which cannot boost A's star");
    }

    #[test]
    fn k_zero_returns_empty() {
        let candidates: Vec<NodeId> = (0..3u32).map(NodeId).collect();
        let r = celf(&candidates, 0, |_| 0.0);
        assert!(r.seeds.is_empty());
        assert_eq!(r.trajectory.len(), 1);
    }
}
