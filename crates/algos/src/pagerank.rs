//! PageRank — one of the paper's heuristic baselines (§7.3).

use comic_graph::{DiGraph, NodeId};

/// Configuration for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (the conventional 0.85).
    pub damping: f64,
    /// Convergence threshold on the L1 change per iteration.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-9,
            max_iterations: 200,
        }
    }
}

/// Power-iteration PageRank over the graph's edge directions.
///
/// Influence-maximization papers rank nodes by PageRank on the *transpose*
/// graph (a node pointed at by influential nodes is influential); pass
/// `g.transpose()` if that convention is wanted — the paper's baseline
/// simply "chooses the k nodes with highest PageRank score", which we
/// interpret on the influence direction with dangling-mass redistribution.
pub fn pagerank(g: &DiGraph, cfg: &PageRankConfig) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.max_iterations {
        next.fill((1.0 - cfg.damping) / nf);
        let mut dangling = 0.0;
        for u in g.nodes() {
            let deg = g.out_degree(u);
            if deg == 0 {
                dangling += rank[u.index()];
                continue;
            }
            let share = cfg.damping * rank[u.index()] / deg as f64;
            for adj in g.out_edges(u) {
                next[adj.node.index()] += share;
            }
        }
        if dangling > 0.0 {
            let spread = cfg.damping * dangling / nf;
            for x in next.iter_mut() {
                *x += spread;
            }
        }
        let delta: f64 = rank
            .iter()
            .zip(next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut rank, &mut next);
        if delta < cfg.tolerance {
            break;
        }
    }
    rank
}

/// The `k` highest-PageRank nodes (ties broken by lower id, scores from
/// [`pagerank`] with the given config).
pub fn pagerank_top_k(g: &DiGraph, k: usize, cfg: &PageRankConfig) -> Vec<NodeId> {
    let scores = pagerank(g, cfg);
    let mut order: Vec<u32> = (0..g.num_nodes() as u32).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.into_iter().take(k).map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_graph::gen;

    #[test]
    fn uniform_on_a_ring() {
        let g = gen::ring(10, 1.0);
        let r = pagerank(&g, &PageRankConfig::default());
        for &x in &r {
            assert!((x - 0.1).abs() < 1e-6, "ring PageRank should be uniform");
        }
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sums_to_one_with_dangling_nodes() {
        let g = gen::star(20, 1.0); // leaves dangle
        let r = pagerank(&g, &PageRankConfig::default());
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn in_star_concentrates_on_the_hub() {
        // Everyone points at node 0.
        let g = gen::star(20, 1.0).transpose();
        let r = pagerank(&g, &PageRankConfig::default());
        for v in 1..20 {
            assert!(r[0] > r[v], "hub should dominate leaf {v}");
        }
        let top = pagerank_top_k(&g, 1, &PageRankConfig::default());
        assert_eq!(top, vec![NodeId(0)]);
    }

    #[test]
    fn top_k_is_sorted_by_score() {
        let g = gen::star(10, 1.0).transpose();
        let top = pagerank_top_k(&g, 3, &PageRankConfig::default());
        assert_eq!(top.len(), 3);
        assert_eq!(top[0], NodeId(0));
    }

    #[test]
    fn empty_graph() {
        let g = comic_graph::builder::from_edges(0, &[]).unwrap();
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
        assert!(pagerank_top_k(&g, 3, &PageRankConfig::default()).is_empty());
    }
}
