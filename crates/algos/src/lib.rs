//! # comic-algos
//!
//! Seed-selection algorithms for the two optimization problems of the paper:
//!
//! * **SelfInfMax** (Problem 1): given a fixed B-seed set, pick `k` A-seeds
//!   maximizing `σ_A(S_A, S_B)` — solved by GeneralTIM with the
//!   [`rr_sim`]/[`rr_sim_plus`] samplers (Theorems 4/7), with the
//!   [`sandwich`] approximation covering general mutual complementarity.
//! * **CompInfMax** (Problem 2): given a fixed A-seed set, pick `k` B-seeds
//!   maximizing the *boost* `σ_A(S_A, S_B) − σ_A(S_A, ∅)` — solved by
//!   GeneralTIM with the [`rr_cim`] sampler (Theorems 5/8) plus sandwich.
//!
//! The paper's baselines are here too: CELF-accelerated Monte-Carlo
//! [`greedy`], [`baselines`] (HighDegree, Random, Copying, VanillaIC) and
//! [`pagerank`]. The [`reference`] module carries brute-force Definition-1
//! samplers used as ground truth when validating the RR-set constructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod comp_inf_max;
pub mod error;
pub mod greedy;
pub mod pagerank;
pub mod reference;
pub mod rr_cim;
pub mod rr_sim;
pub mod rr_sim_plus;
pub mod sandwich;
pub mod self_inf_max;

pub use comp_inf_max::CompInfMax;
pub use error::AlgoError;
pub use rr_cim::RrCimSampler;
pub use rr_sim::RrSimSampler;
pub use rr_sim_plus::RrSimPlusSampler;
pub use self_inf_max::SelfInfMax;
