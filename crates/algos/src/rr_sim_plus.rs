//! RR-SIM+ — scoped RR-set generation for SelfInfMax (paper §6.2.2,
//! Algorithm 3).
//!
//! RR-SIM pays for a full forward B-labeling from `S_B` per sample even when
//! the root's neighbourhood never meets B's reach. RR-SIM+ first runs an
//! *ungated* backward BFS from the root over live edges, collecting the set
//! `T₁` of everything the RR-set could possibly touch; only the B-seeds
//! inside `T₁` are then forward-labeled, restricted to `T₁` — sound because
//! any live B-path to a node of `T₁` lies entirely within `T₁` (Lemma 7: its
//! nodes are all backward-live-reachable from the root). A second, gated
//! backward BFS then produces the RR-set exactly as RR-SIM's phase III,
//! lazily testing any edges the first pass skipped between already-visited
//! nodes.

use comic_core::gap::Gap;
use comic_core::item::Item;
use comic_core::possible_world::LazyWorld;
use comic_graph::scratch::StampedSet;
use comic_graph::{DiGraph, NodeId};
use comic_ris::sampler::RrSampler;
use rand::Rng;

use crate::error::AlgoError;

/// The RR-SIM+ sampler (Algorithm 3).
pub struct RrSimPlusSampler<'g> {
    g: &'g DiGraph,
    gap: Gap,
    is_b_seed: Vec<bool>,
    world: LazyWorld,
    t1: StampedSet,
    t1_list: Vec<NodeId>,
    b_adopted: StampedSet,
    b_tested: StampedSet,
    visited2: StampedSet,
    queue: Vec<NodeId>,
    last_width: u64,
}

impl<'g> RrSimPlusSampler<'g> {
    /// Create a sampler; `gap` must satisfy one-way complementarity
    /// (`q_{A|∅} ≤ q_{A|B}`, `q_{B|∅} = q_{B|A}`).
    pub fn new(g: &'g DiGraph, gap: Gap, seeds_b: Vec<NodeId>) -> Result<Self, AlgoError> {
        if !gap.is_one_way_complement() {
            return Err(AlgoError::UnsupportedRegime(format!(
                "RR-SIM+ requires q_A|0 <= q_A|B and q_B|0 == q_B|A, got {gap}"
            )));
        }
        let mut is_b_seed = vec![false; g.num_nodes()];
        for &s in &seeds_b {
            if s.index() >= g.num_nodes() {
                return Err(AlgoError::Model(comic_core::ModelError::SeedOutOfRange {
                    node: s.0,
                    n: g.num_nodes(),
                }));
            }
            is_b_seed[s.index()] = true;
        }
        Ok(RrSimPlusSampler {
            g,
            gap,
            is_b_seed,
            world: LazyWorld::new(g.num_nodes(), g.num_edges()),
            t1: StampedSet::new(g.num_nodes()),
            t1_list: Vec::new(),
            b_adopted: StampedSet::new(g.num_nodes()),
            b_tested: StampedSet::new(g.num_nodes()),
            visited2: StampedSet::new(g.num_nodes()),
            queue: Vec::new(),
            last_width: 0,
        })
    }

    /// The GAP vector in use.
    pub fn gap(&self) -> Gap {
        self.gap
    }

    /// Validate the regime and seed set once, then return an infallible
    /// per-thread sampler factory for the sharded
    /// [`comic_ris::RisPipeline`].
    pub fn factory(
        g: &'g DiGraph,
        gap: Gap,
        seeds_b: &'g [NodeId],
    ) -> Result<impl Fn() -> RrSimPlusSampler<'g> + Sync + 'g, AlgoError> {
        RrSimPlusSampler::new(g, gap, seeds_b.to_vec())?;
        Ok(move || {
            RrSimPlusSampler::new(g, gap, seeds_b.to_vec()).expect("validated RR-SIM+ construction")
        })
    }
}

impl RrSampler for RrSimPlusSampler<'_> {
    fn graph(&self) -> &DiGraph {
        self.g
    }

    fn sample<R: Rng>(&mut self, root: NodeId, rng: &mut R, out: &mut Vec<NodeId>) {
        out.clear();
        self.world.reset();
        self.t1.clear();
        self.t1_list.clear();
        self.b_adopted.clear();
        self.b_tested.clear();
        self.visited2.clear();

        // --- First backward BFS: the live backward-reachable scope T1. ---
        self.queue.clear();
        self.t1.insert(root.index());
        self.t1_list.push(root);
        self.queue.push(root);
        let mut head = 0;
        let mut any_b_seed_in_scope = false;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            if self.is_b_seed[u.index()] {
                any_b_seed_in_scope = true;
            }
            for adj in self.g.in_edges(u) {
                let w = adj.node;
                // Edges into already-visited nodes are deliberately left
                // untested here; the second pass tests them on demand.
                if !self.t1.contains(w.index()) && self.world.edge_live(adj.edge, adj.p, rng) {
                    self.t1.insert(w.index());
                    self.t1_list.push(w);
                    self.queue.push(w);
                }
            }
        }

        // --- Residual forward labeling, restricted to T1. ---
        if any_b_seed_in_scope {
            self.queue.clear();
            for i in 0..self.t1_list.len() {
                let s = self.t1_list[i];
                if self.is_b_seed[s.index()] && self.b_adopted.insert(s.index()) {
                    self.queue.push(s);
                }
            }
            let mut head = 0;
            while head < self.queue.len() {
                let u = self.queue[head];
                head += 1;
                for adj in self.g.out_edges(u) {
                    let v = adj.node;
                    if !self.t1.contains(v.index())
                        || self.b_adopted.contains(v.index())
                        || self.b_tested.contains(v.index())
                    {
                        continue;
                    }
                    if self.world.edge_live(adj.edge, adj.p, rng) {
                        self.b_tested.insert(v.index());
                        if self.world.alpha(Item::B, v, rng) <= self.gap.q_b0 {
                            self.b_adopted.insert(v.index());
                            self.queue.push(v);
                        }
                    }
                }
            }
        }

        // --- Second backward BFS: gated exactly like RR-SIM phase III,
        // accumulating ω(R) as members are dequeued. ---
        self.queue.clear();
        self.visited2.insert(root.index());
        self.queue.push(root);
        let mut width: u64 = 0;
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            out.push(u);
            width += self.g.in_degree(u) as u64;
            let q = if self.b_adopted.contains(u.index()) {
                self.gap.q_ab
            } else {
                self.gap.q_a0
            };
            if self.world.alpha(Item::A, u, rng) > q {
                continue;
            }
            for adj in self.g.in_edges(u) {
                let w = adj.node;
                if !self.visited2.contains(w.index()) && self.world.edge_live(adj.edge, adj.p, rng)
                {
                    debug_assert!(
                        self.t1.contains(w.index()),
                        "second backward BFS escaped T1 (Lemma 7 invariant)"
                    );
                    self.visited2.insert(w.index());
                    self.queue.push(w);
                }
            }
        }
        self.last_width = width;
    }

    fn sample_with_width<R: Rng>(
        &mut self,
        root: NodeId,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) -> u64 {
        self.sample(root, rng, out);
        self.last_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rr_sim::RrSimSampler;
    use comic_core::seeds::seeds;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn rejects_bad_regime_and_seeds() {
        let g = gen::path(3, 1.0);
        assert!(RrSimPlusSampler::new(&g, Gap::new(0.3, 0.9, 0.5, 0.8).unwrap(), vec![]).is_err());
        assert!(
            RrSimPlusSampler::new(&g, Gap::new(0.3, 0.9, 0.5, 0.5).unwrap(), seeds(&[9])).is_err()
        );
    }

    #[test]
    fn root_membership_and_distinctness() {
        let mut grng = SmallRng::seed_from_u64(1);
        let g = gen::gnm(40, 200, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.4).apply(&g, &mut grng);
        let gap = Gap::new(0.2, 0.9, 0.6, 0.6).unwrap();
        let mut s = RrSimPlusSampler::new(&g, gap, seeds(&[3, 4])).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        for _ in 0..300 {
            let root = NodeId(rng.random_range(0..40));
            s.sample(root, &mut rng, &mut out);
            assert!(out.contains(&root));
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len());
        }
    }

    #[test]
    fn width_accumulated_during_bfs_matches_indegree_sum() {
        let mut grng = SmallRng::seed_from_u64(11);
        let g = gen::gnm(40, 200, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.4).apply(&g, &mut grng);
        let gap = Gap::new(0.2, 0.9, 0.6, 0.6).unwrap();
        let mut s = RrSimPlusSampler::new(&g, gap, seeds(&[3, 4])).unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut out = Vec::new();
        for _ in 0..200 {
            let root = NodeId(rng.random_range(0..40));
            let w = s.sample_with_width(root, &mut rng, &mut out);
            let expect: u64 = out.iter().map(|&v| g.in_degree(v) as u64).sum();
            assert_eq!(w, expect);
        }
    }

    /// RR-SIM and RR-SIM+ must generate identically-distributed RR-sets
    /// (Lemma 7). We compare, for a few probe seed sets S, the estimated
    /// coverage probability Pr[S ∩ R ≠ ∅] — the quantity that drives seed
    /// selection — plus the mean RR-set size.
    #[test]
    fn distribution_matches_rr_sim() {
        let mut grng = SmallRng::seed_from_u64(3);
        let g = gen::gnm(60, 300, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.35).apply(&g, &mut grng);
        let gap = Gap::new(0.25, 0.85, 0.5, 0.5).unwrap();
        let b_seeds = seeds(&[7, 13, 21]);
        let probes: Vec<Vec<NodeId>> = vec![seeds(&[0, 1]), seeds(&[10, 20, 30]), seeds(&[55])];
        let trials = 30_000;

        fn measure<S: RrSampler>(
            sampler: &mut S,
            n: u32,
            probes: &[Vec<NodeId>],
            trials: usize,
            seed: u64,
        ) -> (f64, Vec<f64>) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut out = Vec::new();
            let mut total_size = 0usize;
            let mut hits = vec![0usize; probes.len()];
            for _ in 0..trials {
                let root = NodeId(rng.random_range(0..n));
                sampler.sample(root, &mut rng, &mut out);
                total_size += out.len();
                for (i, p) in probes.iter().enumerate() {
                    if out.iter().any(|v| p.contains(v)) {
                        hits[i] += 1;
                    }
                }
            }
            (
                total_size as f64 / trials as f64,
                hits.iter().map(|&h| h as f64 / trials as f64).collect(),
            )
        }

        let mut plain = RrSimSampler::new(&g, gap, b_seeds.clone()).unwrap();
        let mut plus = RrSimPlusSampler::new(&g, gap, b_seeds.clone()).unwrap();
        let (size_a, cov_a) = measure(&mut plain, 60, &probes, trials, 4);
        let (size_b, cov_b) = measure(&mut plus, 60, &probes, trials, 5);
        assert!(
            (size_a - size_b).abs() / size_a.max(1.0) < 0.05,
            "mean sizes diverge: {size_a} vs {size_b}"
        );
        for i in 0..probes.len() {
            let sigma = (cov_a[i] * (1.0 - cov_a[i]) / trials as f64).sqrt();
            assert!(
                (cov_a[i] - cov_b[i]).abs() < 6.0 * sigma.max(0.003),
                "probe {i}: coverage {} vs {}",
                cov_a[i],
                cov_b[i]
            );
        }
    }

    #[test]
    fn skips_forward_labeling_when_b_out_of_scope() {
        // Disconnected components: B-seeds live in the far component, so the
        // RR-sets match a B-less RR-SIM exactly (same seed = same world).
        let mut b = comic_graph::GraphBuilder::new(20);
        for v in 1..10u32 {
            b.add_edge(0, v, 1.0);
            b.add_edge(v, 0, 1.0);
        }
        for v in 11..20u32 {
            b.add_edge(10, v, 1.0);
        }
        let g = b.build().unwrap();
        let gap = Gap::new(0.5, 0.9, 0.5, 0.5).unwrap();
        let mut with_b = RrSimPlusSampler::new(&g, gap, seeds(&[10])).unwrap();
        let mut no_b = RrSimPlusSampler::new(&g, gap, vec![]).unwrap();
        let mut out1 = Vec::new();
        let mut out2 = Vec::new();
        for trial in 0..50u64 {
            // Same RNG stream: identical worlds, identical decisions.
            let mut rng1 = SmallRng::seed_from_u64(100 + trial);
            let mut rng2 = SmallRng::seed_from_u64(100 + trial);
            with_b.sample(NodeId(5), &mut rng1, &mut out1);
            no_b.sample(NodeId(5), &mut rng2, &mut out2);
            assert_eq!(out1, out2);
        }
    }
}
