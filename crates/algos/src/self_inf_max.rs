//! SelfInfMax (Problem 1): pick `k` A-seeds maximizing `σ_A(S_A, S_B)`
//! for a fixed B-seed set under mutual complementarity.

use comic_core::gap::{Gap, Regime};
use comic_core::seeds::SeedPair;
use comic_core::spread::SpreadEstimator;
use comic_graph::{DiGraph, NodeId};
use comic_ris::select::SelectorKind;
use comic_ris::tim::{TimConfig, TimResult};
use comic_ris::RisPipeline;
use rand::{Rng, RngExt};

use crate::error::AlgoError;
use crate::greedy::{greedy_self_inf_max, GreedyConfig};
use crate::rr_sim::RrSimSampler;
use crate::rr_sim_plus::RrSimPlusSampler;
use crate::sandwich::{solve_sandwich, SandwichCandidate, SandwichReport};

/// How a solution was obtained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The GAPs fall in a provably-submodular region; GeneralTIM was run
    /// directly and carries its `(1 − 1/e − ε)` guarantee.
    Direct,
    /// General mutual complementarity; the sandwich approximation picked the
    /// best of the surrogate solutions (data-dependent factor).
    Sandwich,
}

/// A solved instance.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Selected seeds.
    pub seeds: Vec<NodeId>,
    /// Monte-Carlo estimate of the objective under the true GAPs
    /// (`σ_A` for SelfInfMax, the boost for CompInfMax).
    pub objective: f64,
    /// Which route produced the seeds.
    pub strategy: Strategy,
    /// TIM diagnostics of the winning run (θ, KPT*, coverage).
    pub tim: TimResult,
    /// Sandwich diagnostics when [`Strategy::Sandwich`] was used.
    pub sandwich: Option<SandwichReport>,
}

/// SelfInfMax solver (builder-style).
///
/// # Example
/// ```
/// use comic_algos::SelfInfMax;
/// use comic_core::Gap;
/// use comic_core::seeds::seeds;
/// use comic_graph::gen;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let g = gen::star(50, 0.6);
/// let gap = Gap::new(0.3, 0.8, 0.5, 0.5).unwrap(); // one-way: direct TIM
/// let mut rng = SmallRng::seed_from_u64(1);
/// let sol = SelfInfMax::new(&g, gap, seeds(&[1]))
///     .epsilon(0.5)
///     .solve(1, &mut rng)
///     .unwrap();
/// assert_eq!(sol.seeds.len(), 1);
/// assert_eq!(sol.seeds[0], comic_graph::NodeId(0)); // the hub
/// ```
pub struct SelfInfMax<'g> {
    g: &'g DiGraph,
    gap: Gap,
    seeds_b: Vec<NodeId>,
    epsilon: f64,
    ell: f64,
    max_rr_sets: Option<u64>,
    use_plus: bool,
    eval_iterations: usize,
    threads: usize,
    selector: SelectorKind,
    with_greedy_candidate: Option<GreedyConfig>,
}

impl<'g> SelfInfMax<'g> {
    /// New solver for graph `g`, GAPs `gap`, and the fixed B-seed set.
    pub fn new(g: &'g DiGraph, gap: Gap, seeds_b: Vec<NodeId>) -> Self {
        SelfInfMax {
            g,
            gap,
            seeds_b,
            epsilon: 0.5,
            ell: 1.0,
            max_rr_sets: None,
            use_plus: true,
            eval_iterations: 10_000,
            threads: 0,
            selector: SelectorKind::default(),
            with_greedy_candidate: None,
        }
    }

    /// Set ε (default 0.5, the paper's choice).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Set ℓ (default 1: success probability `1 − 1/n`).
    pub fn ell(mut self, ell: f64) -> Self {
        self.ell = ell;
        self
    }

    /// Cap θ (forfeits the approximation guarantee when hit).
    pub fn max_rr_sets(mut self, cap: u64) -> Self {
        self.max_rr_sets = Some(cap);
        self
    }

    /// Choose RR-SIM (`false`) instead of the default RR-SIM+ (`true`).
    pub fn use_rr_sim_plus(mut self, yes: bool) -> Self {
        self.use_plus = yes;
        self
    }

    /// Monte-Carlo iterations for candidate evaluation (default 10,000).
    pub fn eval_iterations(mut self, iters: usize) -> Self {
        self.eval_iterations = iters;
        self
    }

    /// Worker threads for RR-set generation and MC evaluations
    /// (0 = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Max-coverage strategy for the pipeline's selection phase (default
    /// CELF; selectors return identical seed sets, so this is a
    /// performance knob).
    pub fn selector(mut self, selector: SelectorKind) -> Self {
        self.selector = selector;
        self
    }

    /// Also run MC greedy on the true objective as a sandwich candidate
    /// `S_σ` (expensive; the paper does this for its Greedy+SA runs).
    pub fn with_greedy_candidate(mut self, cfg: GreedyConfig) -> Self {
        self.with_greedy_candidate = Some(cfg);
        self
    }

    fn tim_config(&self, k: usize, seed: u64) -> TimConfig {
        let mut cfg = TimConfig::new(k)
            .epsilon(self.epsilon)
            .seed(seed)
            .selector(self.selector);
        cfg.ell = self.ell;
        cfg.max_rr_sets = self.max_rr_sets;
        cfg.threads = self.threads;
        cfg
    }

    /// One pipeline run under `gap` with the configured RR-SIM(+) sampler.
    fn run_tim(&self, gap: Gap, k: usize, seed: u64) -> Result<TimResult, AlgoError> {
        let pipeline = RisPipeline::new(self.tim_config(k, seed));
        if self.use_plus {
            Ok(pipeline.run(RrSimPlusSampler::factory(self.g, gap, &self.seeds_b)?)?)
        } else {
            Ok(pipeline.run(RrSimSampler::factory(self.g, gap, &self.seeds_b)?)?)
        }
    }

    /// MC estimate of `σ_A(seeds, S_B)` under an arbitrary GAP vector.
    fn sigma_a(&self, gap: Gap, seeds: &[NodeId], seed: u64) -> f64 {
        let sp = SeedPair::new(seeds.to_vec(), self.seeds_b.clone());
        SpreadEstimator::new(self.g, gap)
            .estimate_parallel(&sp, self.eval_iterations, seed, self.threads)
            .sigma_a
    }

    /// Solve for `k` A-seeds.
    ///
    /// * One-way complementarity (`q_{B|∅} = q_{B|A}`): direct GeneralTIM
    ///   with RR-SIM(+), Theorem 7.
    /// * General `Q⁺`: sandwich approximation over the ν/µ surrogates
    ///   (§6.4), optionally plus a greedy `S_σ` candidate.
    /// * Other regimes: unsupported (the paper's problems are posed on `Q⁺`).
    pub fn solve<R: Rng>(&self, k: usize, rng: &mut R) -> Result<Solution, AlgoError> {
        if self.gap.regime() != Regime::MutualComplement {
            return Err(AlgoError::UnsupportedRegime(format!(
                "SelfInfMax is defined for mutual complementarity (Q+); got {}",
                self.gap
            )));
        }
        let seed: u64 = rng.random();

        if self.gap.is_one_way_complement() {
            let tim = self.run_tim(self.gap, k, seed)?;
            let objective = self.sigma_a(self.gap, &tim.seeds, seed ^ 1);
            return Ok(Solution {
                seeds: tim.seeds.clone(),
                objective,
                strategy: Strategy::Direct,
                tim,
                sandwich: None,
            });
        }

        // Sandwich: ν raises q_{B|∅} to q_{B|A}; µ lowers q_{B|A} to q_{B|∅}.
        let nu_gap = self.gap.with_q_b0(self.gap.q_ba)?;
        let mu_gap = self.gap.with_q_ba(self.gap.q_b0)?;
        let tim_nu = self.run_tim(nu_gap, k, seed)?;
        let tim_mu = self.run_tim(mu_gap, k, seed ^ 2)?;

        let mut candidates = vec![
            SandwichCandidate {
                name: "nu",
                objective: self.sigma_a(self.gap, &tim_nu.seeds, seed ^ 3),
                seeds: tim_nu.seeds.clone(),
            },
            SandwichCandidate {
                name: "mu",
                objective: self.sigma_a(self.gap, &tim_mu.seeds, seed ^ 3),
                seeds: tim_mu.seeds.clone(),
            },
        ];
        if let Some(gcfg) = &self.with_greedy_candidate {
            let gr = greedy_self_inf_max(self.g, self.gap, &self.seeds_b, k, gcfg);
            candidates.push(SandwichCandidate {
                name: "sigma",
                objective: self.sigma_a(self.gap, &gr.seeds, seed ^ 3),
                seeds: gr.seeds,
            });
        }
        // The observable factor σ(S_ν)/ν(S_ν) (Table 8).
        let nu_value = self.sigma_a(nu_gap, &tim_nu.seeds, seed ^ 4);
        let ratio = if nu_value > 0.0 {
            candidates[0].objective / nu_value
        } else {
            1.0
        };
        Ok(solve_sandwich(
            candidates,
            ratio,
            vec![("nu", tim_nu), ("mu", tim_mu)],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_core::seeds::seeds;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_q_plus() {
        let g = gen::path(5, 1.0);
        let gap = Gap::new(0.8, 0.2, 0.9, 0.3).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            SelfInfMax::new(&g, gap, vec![]).solve(1, &mut rng),
            Err(AlgoError::UnsupportedRegime(_))
        ));
    }

    #[test]
    fn direct_route_on_one_way_gap() {
        let g = gen::star(60, 0.7);
        let gap = Gap::new(0.4, 0.9, 0.5, 0.5).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let sol = SelfInfMax::new(&g, gap, seeds(&[5]))
            .eval_iterations(2000)
            .threads(1)
            .solve(1, &mut rng)
            .unwrap();
        assert_eq!(sol.strategy, Strategy::Direct);
        assert!(sol.sandwich.is_none());
        assert_eq!(sol.seeds, vec![NodeId(0)]);
        assert!(sol.objective > 1.0);
    }

    #[test]
    fn sandwich_route_on_general_q_plus() {
        let mut grng = SmallRng::seed_from_u64(3);
        let topo = gen::gnm(80, 500, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::WeightedCascade.apply(&topo, &mut grng);
        let gap = Gap::new(0.3, 0.8, 0.4, 0.9).unwrap(); // q_b0 < q_ba
        let mut rng = SmallRng::seed_from_u64(4);
        let sol = SelfInfMax::new(&g, gap, seeds(&[0, 1]))
            .eval_iterations(2000)
            .threads(1)
            .solve(3, &mut rng)
            .unwrap();
        assert_eq!(sol.strategy, Strategy::Sandwich);
        let report = sol.sandwich.as_ref().unwrap();
        assert_eq!(report.candidates.len(), 2);
        assert!(
            report.upper_bound_ratio > 0.0 && report.upper_bound_ratio <= 1.05,
            "ratio {}",
            report.upper_bound_ratio
        );
        assert_eq!(sol.seeds.len(), 3);
        // Winner's objective is the max across candidates.
        for c in &report.candidates {
            assert!(sol.objective >= c.objective - 1e-9);
        }
    }

    #[test]
    fn selector_choice_is_invisible_in_solutions() {
        // Both the RR-SIM and RR-SIM+ routes must pick byte-identical
        // seeds under CELF and the naive-greedy oracle for a fixed
        // (seed, threads) — the select-engine determinism contract
        // surfaced at the solver level.
        let mut grng = SmallRng::seed_from_u64(9);
        let topo = gen::gnm(100, 600, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::WeightedCascade.apply(&topo, &mut grng);
        let gap = Gap::new(0.3, 0.8, 0.5, 0.5).unwrap(); // one-way: direct route
        for use_plus in [false, true] {
            let solve = |selector| {
                let mut rng = SmallRng::seed_from_u64(33);
                SelfInfMax::new(&g, gap, seeds(&[1, 2]))
                    .eval_iterations(500)
                    .threads(2)
                    .max_rr_sets(20_000)
                    .use_rr_sim_plus(use_plus)
                    .selector(selector)
                    .solve(4, &mut rng)
                    .unwrap()
            };
            let celf = solve(SelectorKind::Celf);
            let naive = solve(SelectorKind::NaiveGreedy);
            assert_eq!(celf.seeds, naive.seeds, "use_plus = {use_plus}");
            assert_eq!(celf.tim.covered, naive.tim.covered);
        }
    }

    #[test]
    fn beats_random_seeds() {
        let mut grng = SmallRng::seed_from_u64(5);
        let topo = gen::chung_lu(
            &gen::ChungLuConfig {
                n: 300,
                target_edges: 1800,
                exponent: 2.2,
            },
            &mut grng,
        )
        .unwrap();
        let g = comic_graph::prob::ProbModel::WeightedCascade.apply(&topo, &mut grng);
        let gap = Gap::new(0.3, 0.8, 0.5, 0.5).unwrap();
        let b_seeds = seeds(&[10, 11, 12]);
        let mut rng = SmallRng::seed_from_u64(6);
        let sol = SelfInfMax::new(&g, gap, b_seeds.clone())
            .eval_iterations(4000)
            .threads(1)
            .solve(5, &mut rng)
            .unwrap();
        let est = SpreadEstimator::new(&g, gap);
        let random = SeedPair::new(seeds(&[100, 101, 102, 103, 104]), b_seeds);
        let random_sigma = est.estimate(&random, 4000, 7).sigma_a;
        assert!(
            sol.objective > random_sigma,
            "TIM {} vs random {random_sigma}",
            sol.objective
        );
    }
}
