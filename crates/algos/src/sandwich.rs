//! The Sandwich Approximation strategy (paper §6.4, Theorem 9).
//!
//! When the objective `σ` is not submodular (general mutual complementarity)
//! but is bounded by submodular surrogates `µ ≤ σ ≤ ν`, run the
//! approximation algorithm on the surrogates (and optionally on `σ` itself
//! via Monte-Carlo greedy), then keep whichever candidate seed set scores
//! best under the *true* `σ`:
//!
//! `σ(S_sand) ≥ max{ σ(S_ν)/ν(S_ν), µ(S*)/σ(S*) } · (1 − 1/e) · σ(S*)`.
//!
//! The first ratio is observable — [`SandwichReport::upper_bound_ratio`]
//! reports it, reproducing Table 8 — and the candidate-vs-candidate
//! disagreement [`SandwichReport::sa_error`] reproduces the `SA_error`
//! metric of §7.3. Surrogates are obtained by GAP monotonicity (Theorem 10):
//! raising `q_{B|∅}` to `q_{B|A}` can only increase `σ_A`, lowering
//! `q_{B|A}` to `q_{B|∅}` can only decrease it, and both moves land in the
//! provably-submodular one-way regime.

use crate::self_inf_max::{Solution, Strategy};
use comic_graph::NodeId;
use comic_ris::tim::TimResult;

/// One candidate seed set inside a sandwich run.
#[derive(Clone, Debug)]
pub struct SandwichCandidate {
    /// Which function produced it: `"nu"` (upper bound), `"mu"` (lower
    /// bound), or `"sigma"` (MC greedy on the true objective).
    pub name: &'static str,
    /// The seed set.
    pub seeds: Vec<NodeId>,
    /// Its objective value under the **true** GAP vector (MC estimate).
    pub objective: f64,
}

/// Diagnostics of a sandwich run.
#[derive(Clone, Debug)]
pub struct SandwichReport {
    /// All candidates evaluated under the true objective.
    pub candidates: Vec<SandwichCandidate>,
    /// Index into [`SandwichReport::candidates`] of the winner.
    pub chosen: usize,
    /// The observable data-dependent factor `σ(S_ν)/ν(S_ν)` (Table 8).
    pub upper_bound_ratio: f64,
    /// `max_i |σ(S_σ) − σ(S_i)| / σ(S_σ)` across the other candidates —
    /// only available when the greedy `S_σ` candidate was computed.
    pub sa_error: Option<f64>,
}

impl SandwichReport {
    /// Assemble a report: pick the best candidate by true objective and
    /// derive the error metric if a `"sigma"` candidate exists.
    pub fn assemble(candidates: Vec<SandwichCandidate>, upper_bound_ratio: f64) -> SandwichReport {
        assert!(!candidates.is_empty(), "sandwich needs candidates");
        let chosen = candidates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.objective.total_cmp(&b.1.objective))
            .map(|(i, _)| i)
            .expect("non-empty");
        let sa_error = candidates.iter().find(|c| c.name == "sigma").map(|sigma| {
            let s = sigma.objective;
            candidates
                .iter()
                .filter(|c| c.name != "sigma")
                .map(|c| (s - c.objective).abs() / s.abs().max(1e-12))
                .fold(0.0f64, f64::max)
        });
        SandwichReport {
            candidates,
            chosen,
            upper_bound_ratio,
            sa_error,
        }
    }

    /// The winning candidate.
    pub fn winner(&self) -> &SandwichCandidate {
        &self.candidates[self.chosen]
    }
}

/// Assemble the final [`Solution`] of a sandwich run — the shared last step
/// of both solvers' sandwich routes: pick the best candidate under the true
/// objective and attach the RIS diagnostics of the winning surrogate.
///
/// `tims` maps candidate names to their pipeline runs; a winner without one
/// (the MC-greedy `"sigma"` candidate) reports the first surrogate's
/// diagnostics, matching the paper's convention of reporting ν's θ.
pub fn solve_sandwich(
    candidates: Vec<SandwichCandidate>,
    upper_bound_ratio: f64,
    mut tims: Vec<(&'static str, TimResult)>,
) -> Solution {
    assert!(
        !tims.is_empty(),
        "sandwich needs at least one surrogate run"
    );
    let report = SandwichReport::assemble(candidates, upper_bound_ratio);
    let winner = report.winner();
    let idx = tims
        .iter()
        .position(|(name, _)| *name == winner.name)
        .unwrap_or(0);
    Solution {
        seeds: winner.seeds.clone(),
        objective: winner.objective,
        strategy: Strategy::Sandwich,
        tim: tims.swap_remove(idx).1,
        sandwich: Some(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(name: &'static str, objective: f64) -> SandwichCandidate {
        SandwichCandidate {
            name,
            seeds: vec![NodeId(0)],
            objective,
        }
    }

    #[test]
    fn picks_the_best_candidate() {
        let r = SandwichReport::assemble(vec![cand("nu", 10.0), cand("mu", 12.0)], 0.9);
        assert_eq!(r.winner().name, "mu");
        assert_eq!(r.chosen, 1);
        assert!(r.sa_error.is_none());
        assert_eq!(r.upper_bound_ratio, 0.9);
    }

    #[test]
    fn sa_error_uses_the_sigma_candidate() {
        let r = SandwichReport::assemble(
            vec![cand("nu", 99.0), cand("mu", 98.0), cand("sigma", 100.0)],
            0.95,
        );
        assert_eq!(r.winner().name, "sigma");
        let err = r.sa_error.unwrap();
        assert!((err - 0.02).abs() < 1e-12, "err {err}");
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panics() {
        SandwichReport::assemble(vec![], 1.0);
    }

    #[test]
    fn solve_sandwich_attaches_the_matching_tim_run() {
        let tim = |theta| TimResult {
            seeds: vec![NodeId(0)],
            theta,
            kpt: 1.0,
            covered: 1,
            est_spread: 1.0,
            capped: false,
        };
        let sol = solve_sandwich(
            vec![cand("nu", 5.0), cand("mu", 7.0)],
            0.9,
            vec![("nu", tim(10)), ("mu", tim(20))],
        );
        assert_eq!(sol.strategy, Strategy::Sandwich);
        assert_eq!(sol.objective, 7.0);
        assert_eq!(sol.tim.theta, 20, "winner mu carries mu's diagnostics");
        // A winner without its own TIM run (MC greedy) falls back to the
        // first surrogate's diagnostics.
        let sol = solve_sandwich(
            vec![cand("nu", 5.0), cand("sigma", 9.0)],
            0.9,
            vec![("nu", tim(10))],
        );
        assert_eq!(sol.tim.theta, 10);
        assert_eq!(sol.sandwich.unwrap().winner().name, "sigma");
    }
}
