//! Brute-force Definition-1 reference samplers.
//!
//! Definition 1 of the paper defines an RR-set extensionally: fix a possible
//! world, then `u ∈ R_W(v)` iff the singleton seed `{u}` activates `v` in
//! `W`. These functions compute that set literally, by replaying the
//! deterministic cascade once per candidate node *in the same lazily-shared
//! world*. Cost is `O(n · cascade)` per world — exponential in usefulness,
//! linear in confidence — so they serve as ground truth for the optimized
//! RR-SIM / RR-SIM+ / RR-CIM constructions in tests, and as a debugging aid
//! for anyone extending the samplers to new GAP regimes.

use comic_core::gap::Gap;
use comic_core::item::Item;
use comic_core::oracle::Oracle;
use comic_core::possible_world::LazyWorld;
use comic_core::seeds::SeedPair;
use comic_core::simulate::CascadeEngine;
use comic_graph::{DiGraph, EdgeId, NodeId};
use rand::Rng;

/// An [`Oracle`] over a *borrowed* [`LazyWorld`] whose `reset` is a no-op:
/// every cascade run through it shares (and extends) the same world.
pub struct BorrowedWorldOracle<'w, R> {
    world: &'w mut LazyWorld,
    rng: &'w mut R,
}

impl<'w, R: Rng> BorrowedWorldOracle<'w, R> {
    /// Wrap a world and RNG.
    pub fn new(world: &'w mut LazyWorld, rng: &'w mut R) -> Self {
        BorrowedWorldOracle { world, rng }
    }
}

impl<R: Rng> Oracle for BorrowedWorldOracle<'_, R> {
    #[inline]
    fn edge_live(&mut self, e: EdgeId, p: f64) -> bool {
        self.world.edge_live(e, p, self.rng)
    }
    #[inline]
    fn adopt(&mut self, v: NodeId, item: Item, other_adopted: bool, gap: &Gap) -> bool {
        self.world.passes(item, v, other_adopted, gap, self.rng)
    }
    #[inline]
    fn reconsider(&mut self, v: NodeId, item: Item, gap: &Gap) -> bool {
        self.world.passes(item, v, true, gap, self.rng)
    }
    #[inline]
    fn tie_priority(&mut self, e: EdgeId) -> u64 {
        self.world.priority(e, self.rng)
    }
    #[inline]
    fn seed_a_first(&mut self, v: NodeId) -> bool {
        self.world.tau(v, self.rng)
    }
    /// No-op by design: the borrowed world persists across runs.
    fn reset(&mut self) {}
}

/// Whether the root adopts A when diffusing `seeds` in (a shared view of)
/// `world`.
fn root_adopts_a<R: Rng>(
    engine: &mut CascadeEngine<'_>,
    gap: &Gap,
    seeds: &SeedPair,
    root: NodeId,
    world: &mut LazyWorld,
    rng: &mut R,
) -> bool {
    let mut oracle = BorrowedWorldOracle::new(world, rng);
    engine.run(gap, seeds, &mut oracle);
    engine.final_state(root).adopted(Item::A)
}

/// Definition-1 RR-set for **SelfInfMax**: all `u` such that `S_A = {u}`
/// (with the fixed `seeds_b`) makes `root` A-adopted in `world`.
pub fn reference_rr_sim<R: Rng>(
    g: &DiGraph,
    gap: Gap,
    seeds_b: &[NodeId],
    root: NodeId,
    world: &mut LazyWorld,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut engine = CascadeEngine::new(g);
    let mut out = Vec::new();
    for u in g.nodes() {
        let sp = SeedPair::new(vec![u], seeds_b.to_vec());
        if root_adopts_a(&mut engine, &gap, &sp, root, world, rng) {
            out.push(u);
        }
    }
    out
}

/// Definition-1 RR-set for **CompInfMax**: empty if `root` is A-adopted
/// with no B-seeds at all; otherwise all `u` such that `S_B = {u}` flips
/// `root` to A-adopted in `world`.
pub fn reference_rr_cim<R: Rng>(
    g: &DiGraph,
    gap: Gap,
    seeds_a: &[NodeId],
    root: NodeId,
    world: &mut LazyWorld,
    rng: &mut R,
) -> Vec<NodeId> {
    let mut engine = CascadeEngine::new(g);
    let baseline = SeedPair::new(seeds_a.to_vec(), Vec::new());
    if root_adopts_a(&mut engine, &gap, &baseline, root, world, rng) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for u in g.nodes() {
        let sp = SeedPair::new(seeds_a.to_vec(), vec![u]);
        if root_adopts_a(&mut engine, &gap, &sp, root, world, rng) {
            out.push(u);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_core::seeds::seeds;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn borrowed_world_survives_engine_resets() {
        let g = gen::path(4, 0.5);
        let gap = Gap::new(0.5, 0.9, 0.5, 0.9).unwrap();
        let mut world = LazyWorld::new(4, 3);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut engine = CascadeEngine::new(&g);
        let sp = SeedPair::a_only(seeds(&[0]));
        let first = root_adopts_a(&mut engine, &gap, &sp, NodeId(3), &mut world, &mut rng);
        for _ in 0..10 {
            assert_eq!(
                root_adopts_a(&mut engine, &gap, &sp, NodeId(3), &mut world, &mut rng),
                first,
                "same world must give the same outcome"
            );
        }
    }

    #[test]
    fn reference_sim_contains_root_when_reachable() {
        // The root seeded directly always adopts, so root ∈ reference set.
        let g = gen::path(3, 1.0);
        let gap = Gap::new(0.5, 0.9, 0.5, 0.5).unwrap();
        let mut world = LazyWorld::new(3, 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let set = reference_rr_sim(&g, gap, &[], NodeId(2), &mut world, &mut rng);
        assert!(set.contains(&NodeId(2)));
    }

    #[test]
    fn reference_cim_empty_when_root_self_adopts() {
        let g = gen::path(2, 1.0);
        let gap = Gap::new(1.0, 1.0, 0.5, 1.0).unwrap();
        let mut world = LazyWorld::new(2, 1);
        let mut rng = SmallRng::seed_from_u64(3);
        let set = reference_rr_cim(&g, gap, &seeds(&[0]), NodeId(1), &mut world, &mut rng);
        assert!(set.is_empty());
    }
}
