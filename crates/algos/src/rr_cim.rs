//! RR-CIM — RR-set generation for CompInfMax (paper §6.3, Algorithm 4).
//!
//! Valid when `q_{A|∅} ≤ q_{A|B}` and `q_{B|∅} ≤ q_{B|A} = 1` (Theorems
//! 5/8). A node `u` belongs to `R_W(v)` iff the root `v` is *not* A-adopted
//! in world `W` without B-seeds, but becomes A-adopted when `u` is the only
//! B-seed.
//!
//! **Phase I** forward-labels every node's counterfactual A-status with no
//! B-seeds (Equation 4): `A-adopted` / `A-rejected` / `A-suspended`
//! (informed of A, needs B to adopt) / `A-potential` (would be informed if
//! upstream suspended nodes were unlocked). Labels only strengthen
//! (potential → suspended → adopted), so the pass runs to a fixpoint with
//! re-enqueueing — this covers the paper's "promotion" of potential nodes
//! reached later by adopted neighbours.
//!
//! **Phase II** runs the primary backward search from the root through
//! AB-diffusible potential nodes, harvesting:
//! * case 1 — suspended ∧ AB-diffusible: the node plus its backward cone
//!   through B-diffusible nodes (any of them seeding B reaches it);
//! * case 2 — suspended ∧ ¬AB-diffusible: the node alone;
//! * case 3 — potential ∧ AB-diffusible: keep climbing;
//! * case 4 — potential ∧ ¬AB-diffusible: the `S_f ∩ S_b` loop test of
//!   Figure 3 (the node can seed B, route it forward to a suspended
//!   unlocker, and receive A back).
//!
//! The construction follows Algorithm 4 verbatim. Note (documented in
//! DESIGN.md): the *static* B-diffusible gate `α_B ≤ q_{B|∅} ∨ label =
//! adopted` can under-collect in a rare corner where an A-ready but
//! merely-potential node would relay B only thanks to `q_{B|A} = 1` after
//! receiving A along the same path; the brute-force replay tests in this
//! module quantify the effect (soundness — no false members — always
//! holds).

use comic_core::gap::Gap;
use comic_core::item::Item;
use comic_core::possible_world::LazyWorld;
use comic_graph::scratch::{StampedSet, StampedVec};
use comic_graph::{DiGraph, NodeId};
use comic_ris::sampler::RrSampler;
use rand::Rng;

use crate::error::AlgoError;

/// Counterfactual A-status labels of the Phase-I forward pass, ordered by
/// strength so the fixpoint is a monotone max-merge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
#[repr(u8)]
enum FLabel {
    /// Never informed of A (even counterfactually).
    #[default]
    Unreached = 0,
    /// Would be informed of A if upstream suspended nodes adopted.
    Potential = 1,
    /// Informed of A, declined, awaiting a B boost.
    Suspended = 2,
    /// Adopts A with no B-seeds at all.
    Adopted = 3,
}

/// The RR-CIM sampler (Algorithm 4).
pub struct RrCimSampler<'g> {
    g: &'g DiGraph,
    gap: Gap,
    seeds_a: Vec<NodeId>,
    world: LazyWorld,
    label: StampedVec<FLabel>,
    in_r: StampedSet,
    prim_visited: StampedSet,
    sec_b_visited: StampedSet,
    sf: StampedSet,
    sb: StampedSet,
    queue: Vec<NodeId>,
    queue2: Vec<NodeId>,
    sf_list: Vec<NodeId>,
    last_width: u64,
}

impl<'g> RrCimSampler<'g> {
    /// Create a sampler; requires the CompInfMax-submodular regime
    /// `q_{A|∅} ≤ q_{A|B}`, `q_{B|∅} ≤ q_{B|A} = 1`.
    pub fn new(g: &'g DiGraph, gap: Gap, seeds_a: Vec<NodeId>) -> Result<Self, AlgoError> {
        if !gap.is_cim_submodular() {
            return Err(AlgoError::UnsupportedRegime(format!(
                "RR-CIM requires mutual complementarity with q_B|A = 1, got {gap}"
            )));
        }
        for &s in &seeds_a {
            if s.index() >= g.num_nodes() {
                return Err(AlgoError::Model(comic_core::ModelError::SeedOutOfRange {
                    node: s.0,
                    n: g.num_nodes(),
                }));
            }
        }
        let n = g.num_nodes();
        Ok(RrCimSampler {
            g,
            gap,
            seeds_a,
            world: LazyWorld::new(n, g.num_edges()),
            label: StampedVec::new(n),
            in_r: StampedSet::new(n),
            prim_visited: StampedSet::new(n),
            sec_b_visited: StampedSet::new(n),
            sf: StampedSet::new(n),
            sb: StampedSet::new(n),
            queue: Vec::new(),
            queue2: Vec::new(),
            sf_list: Vec::new(),
            last_width: 0,
        })
    }

    /// The GAP vector in use.
    pub fn gap(&self) -> Gap {
        self.gap
    }

    /// Memoization pressure of the sampler's owned [`LazyWorld`],
    /// accumulated over every [`RrSampler::sample`] call so far: how often
    /// Phase II's backward searches (and especially the case-4 `S_f ∩ S_b`
    /// loop test, which re-walks edges the primary search already flipped)
    /// were answered from the per-world memo instead of drawing fresh
    /// coins.
    pub fn memo_stats(&self) -> comic_core::possible_world::MemoStats {
        self.world.memo_stats()
    }

    /// Zero the [`RrCimSampler::memo_stats`] counters.
    pub fn reset_memo_stats(&mut self) {
        self.world.reset_memo_stats();
    }

    /// Validate the regime and seed set once, then return an infallible
    /// per-thread sampler factory for the sharded
    /// [`comic_ris::RisPipeline`].
    pub fn factory(
        g: &'g DiGraph,
        gap: Gap,
        seeds_a: &'g [NodeId],
    ) -> Result<impl Fn() -> RrCimSampler<'g> + Sync + 'g, AlgoError> {
        RrCimSampler::new(g, gap, seeds_a.to_vec())?;
        Ok(move || {
            RrCimSampler::new(g, gap, seeds_a.to_vec()).expect("validated RR-CIM construction")
        })
    }

    #[inline]
    fn get_label(&self, v: NodeId) -> FLabel {
        self.label.get_copied(v.index()).unwrap_or_default()
    }

    /// AB-diffusible: adopts both items when informed of both —
    /// `α_A ≤ q_{A|∅} ∨ (α_A ≤ q_{A|B} ∧ α_B ≤ q_{B|∅})`.
    #[inline]
    fn ab_diffusible<R: Rng>(&mut self, v: NodeId, world: &mut LazyWorld, rng: &mut R) -> bool {
        let aa = world.alpha(Item::A, v, rng);
        aa <= self.gap.q_a0
            || (aa <= self.gap.q_ab && world.alpha(Item::B, v, rng) <= self.gap.q_b0)
    }

    /// B-diffusible: adopts B when informed of it —
    /// `α_B ≤ q_{B|∅} ∨ A-adopted-as-labeled` (the latter because
    /// `q_{B|A} = 1`).
    #[inline]
    fn b_diffusible<R: Rng>(&mut self, v: NodeId, world: &mut LazyWorld, rng: &mut R) -> bool {
        world.alpha(Item::B, v, rng) <= self.gap.q_b0 || self.get_label(v) == FLabel::Adopted
    }

    /// Phase I: fixpoint forward labeling from `S_A` per Equation (4).
    fn forward_label<R: Rng>(&mut self, world: &mut LazyWorld, rng: &mut R) {
        self.queue.clear();
        for i in 0..self.seeds_a.len() {
            let s = self.seeds_a[i];
            self.label.set(s.index(), FLabel::Adopted);
            self.queue.push(s);
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let lu = self.get_label(u);
            for adj in self.g.out_edges(u) {
                if !world.edge_live(adj.edge, adj.p, rng) {
                    continue;
                }
                let v = adj.node;
                let av = world.alpha(Item::A, v, rng);
                let cand = match lu {
                    FLabel::Adopted => {
                        if av <= self.gap.q_a0 {
                            FLabel::Adopted
                        } else if av <= self.gap.q_ab {
                            FLabel::Suspended
                        } else {
                            continue; // A-rejected: α_A > q_{A|B}
                        }
                    }
                    _ => {
                        if av <= self.gap.q_ab {
                            FLabel::Potential
                        } else {
                            continue;
                        }
                    }
                };
                if cand > self.get_label(v) {
                    self.label.set(v.index(), cand);
                    self.queue.push(v);
                }
            }
        }
    }

    #[inline]
    fn add_to_r(&mut self, v: NodeId, out: &mut Vec<NodeId>) {
        if self.in_r.insert(v.index()) {
            out.push(v);
            // Every member enters through here, so ω(R) is tallied in place.
            self.last_width += self.g.in_degree(v) as u64;
        }
    }

    /// Case 1 secondary: backward cone from `u` through B-diffusible nodes;
    /// every touched node joins R, non-B-diffusible nodes end their branch.
    fn secondary_backward<R: Rng>(
        &mut self,
        u: NodeId,
        world: &mut LazyWorld,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        if !self.sec_b_visited.insert(u.index()) {
            return; // cone already harvested by an earlier secondary search
        }
        self.queue2.clear();
        self.queue2.push(u);
        let mut head = 0;
        while head < self.queue2.len() {
            let x = self.queue2[head];
            head += 1;
            for adj in self.g.in_edges(x) {
                let w = adj.node;
                if self.sec_b_visited.contains(w.index()) || !world.edge_live(adj.edge, adj.p, rng)
                {
                    continue;
                }
                self.sec_b_visited.insert(w.index());
                self.add_to_r(w, out);
                if self.b_diffusible(w, world, rng) {
                    self.queue2.push(w);
                }
            }
        }
    }

    /// Case 4: can `u`, seeding B, route B forward through B-diffusible
    /// nodes to an A-suspended unlocker `u₀` that routes A back to `u`
    /// through AB-diffusible labeled nodes? (Figure 3.)
    fn case4_loop_exists<R: Rng>(&mut self, u: NodeId, world: &mut LazyWorld, rng: &mut R) -> bool {
        // Forward sweep (S_f): B-diffusible interior, endpoints included.
        self.sf.clear();
        self.sf_list.clear();
        self.queue2.clear();
        self.sf.insert(u.index());
        self.queue2.push(u);
        let mut head = 0;
        while head < self.queue2.len() {
            let x = self.queue2[head];
            head += 1;
            for adj in self.g.out_edges(x) {
                let y = adj.node;
                if self.sf.contains(y.index()) || !world.edge_live(adj.edge, adj.p, rng) {
                    continue;
                }
                self.sf.insert(y.index());
                self.sf_list.push(y);
                if self.b_diffusible(y, world, rng) {
                    self.queue2.push(y);
                }
            }
        }
        // Backward sweep (S_b): AB-diffusible nodes with label ≥ potential.
        self.sb.clear();
        self.queue2.clear();
        self.sb.insert(u.index());
        self.queue2.push(u);
        let mut head = 0;
        while head < self.queue2.len() {
            let x = self.queue2[head];
            head += 1;
            for adj in self.g.in_edges(x) {
                let w = adj.node;
                if self.sb.contains(w.index()) || !world.edge_live(adj.edge, adj.p, rng) {
                    continue;
                }
                if self.get_label(w) >= FLabel::Potential && self.ab_diffusible(w, world, rng) {
                    self.sb.insert(w.index());
                    self.queue2.push(w);
                }
            }
        }
        // Intersection check for an A-suspended unlocker.
        for i in 0..self.sf_list.len() {
            let y = self.sf_list[i];
            if self.sb.contains(y.index()) && self.get_label(y) == FLabel::Suspended {
                return true;
            }
        }
        false
    }

    /// Sample `R_W(root)` in the provided (already reset) world — exposed so
    /// validation code can replay the identical world through the
    /// brute-force reference sampler.
    pub fn sample_in_world<R: Rng>(
        &mut self,
        root: NodeId,
        world: &mut LazyWorld,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.label.clear();
        self.in_r.clear();
        self.prim_visited.clear();
        self.sec_b_visited.clear();
        self.last_width = 0;

        self.forward_label(world, rng);

        // Roots that adopt A on their own, were rejected, or can never be
        // informed, cannot be boosted (Algorithm 4 lines 2–3).
        let rl = self.get_label(root);
        if rl != FLabel::Suspended && rl != FLabel::Potential {
            return;
        }

        self.queue.clear();
        self.prim_visited.insert(root.index());
        self.queue.push(root);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            match self.get_label(u) {
                FLabel::Suspended => {
                    // Cases 1 & 2: u itself always qualifies.
                    self.add_to_r(u, out);
                    if self.ab_diffusible(u, world, rng) {
                        self.secondary_backward(u, world, rng, out);
                    }
                }
                FLabel::Potential => {
                    if self.ab_diffusible(u, world, rng) {
                        // Case 3: continue the primary climb.
                        for adj in self.g.in_edges(u) {
                            let w = adj.node;
                            if !self.prim_visited.contains(w.index())
                                && world.edge_live(adj.edge, adj.p, rng)
                            {
                                self.prim_visited.insert(w.index());
                                self.queue.push(w);
                            }
                        }
                    } else if self.case4_loop_exists(u, world, rng) {
                        // Case 4 special treatment; primary stops here.
                        self.add_to_r(u, out);
                    }
                }
                _ => {} // adopted / unreached: nothing to harvest or climb
            }
        }
    }
}

impl RrSampler for RrCimSampler<'_> {
    fn graph(&self) -> &DiGraph {
        self.g
    }

    fn sample<R: Rng>(&mut self, root: NodeId, rng: &mut R, out: &mut Vec<NodeId>) {
        // Detach the owned world to satisfy the borrow checker, then restore.
        let mut world = std::mem::replace(&mut self.world, LazyWorld::new(0, 0));
        world.reset();
        self.sample_in_world(root, &mut world, rng, out);
        self.world = world;
    }

    fn sample_with_width<R: Rng>(
        &mut self,
        root: NodeId,
        rng: &mut R,
        out: &mut Vec<NodeId>,
    ) -> u64 {
        self.sample(root, rng, out);
        self.last_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_rr_cim;
    use comic_core::seeds::seeds;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn cim_gap() -> Gap {
        Gap::new(0.2, 0.8, 0.4, 1.0).unwrap()
    }

    #[test]
    fn rejects_bad_regime() {
        let g = gen::path(3, 1.0);
        // q_ba != 1
        assert!(RrCimSampler::new(&g, Gap::new(0.2, 0.8, 0.4, 0.9).unwrap(), vec![]).is_err());
        // not mutually complementary
        assert!(RrCimSampler::new(&g, Gap::new(0.8, 0.2, 0.4, 1.0).unwrap(), vec![]).is_err());
        assert!(RrCimSampler::new(&g, cim_gap(), vec![]).is_ok());
        assert!(RrCimSampler::new(&g, cim_gap(), seeds(&[9])).is_err());
    }

    #[test]
    fn adopted_or_unreachable_roots_give_empty_sets() {
        // Path 0 -> 1 with q_{A|∅} = 1: node 1 always adopts without B.
        let g = gen::path(2, 1.0);
        let gap = Gap::new(1.0, 1.0, 0.5, 1.0).unwrap();
        let mut s = RrCimSampler::new(&g, gap, seeds(&[0])).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut out = Vec::new();
        for _ in 0..20 {
            s.sample(NodeId(1), &mut rng, &mut out);
            assert!(out.is_empty());
        }
        // A node with no A-seed upstream can never be boosted either.
        let g2 = gen::path(3, 1.0);
        let mut s2 = RrCimSampler::new(&g2, cim_gap(), seeds(&[1])).unwrap();
        for _ in 0..20 {
            s2.sample(NodeId(0), &mut rng, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn suspended_root_harvests_its_b_cone() {
        // 2 -> 1 -> 0(root), A-seed at 2; q_{A|∅}=0 so everything reachable
        // is suspended/potential; q_{B|∅}=1 makes every node B-diffusible.
        let g = comic_graph::builder::from_edges(3, &[(2, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let gap = Gap::new(0.0, 1.0, 1.0, 1.0).unwrap();
        let mut s = RrCimSampler::new(&g, gap, seeds(&[2])).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        // Node 1 is suspended (informed by adopted seed 2); root 0 is merely
        // potential. Seeding B at 1 (reconsideration) or at 2 (B relayed to
        // 1, then reconsideration) flips the root; seeding B at the root
        // itself does not — the root is never informed of A that way.
        s.sample(NodeId(0), &mut rng, &mut out);
        let mut got: Vec<u32> = out.iter().map(|v| v.0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    /// Replay-based validation against the brute-force Definition-1
    /// reference: in the *same* possible world, Algorithm 4 must never
    /// include a node whose solo B-seeding fails to flip the root
    /// (soundness), and should almost always find exactly the reference set
    /// (the rare static-gate under-collection is tolerated and counted).
    #[test]
    fn matches_definition_one_reference_per_world() {
        let mut grng = SmallRng::seed_from_u64(3);
        let mut total_sets = 0usize;
        let mut undercollected = 0usize;
        for (gi, gap) in [
            cim_gap(),
            Gap::new(0.0, 1.0, 0.3, 1.0).unwrap(),
            Gap::new(0.4, 0.7, 0.6, 1.0).unwrap(),
        ]
        .into_iter()
        .enumerate()
        {
            let topo = gen::gnm(14, 42, &mut grng).unwrap();
            let g = comic_graph::prob::ProbModel::Constant(0.7).apply(&topo, &mut grng);
            let seeds_a = seeds(&[0, 1]);
            let mut sampler = RrCimSampler::new(&g, gap, seeds_a.clone()).unwrap();
            let mut rng = SmallRng::seed_from_u64(40 + gi as u64);
            let mut world = LazyWorld::new(g.num_nodes(), g.num_edges());
            let mut out = Vec::new();
            for trial in 0..400 {
                let root = NodeId(rng.random_range(0..g.num_nodes() as u32));
                world.reset();
                sampler.sample_in_world(root, &mut world, &mut rng, &mut out);
                let reference = reference_rr_cim(&g, gap, &seeds_a, root, &mut world, &mut rng);
                let alg: std::collections::BTreeSet<NodeId> = out.iter().copied().collect();
                let rf: std::collections::BTreeSet<NodeId> = reference.into_iter().collect();
                assert!(
                    alg.is_subset(&rf),
                    "gap {gi} trial {trial} root {root}: Algorithm 4 produced \
                     non-activating members {:?} (reference {:?})",
                    alg.difference(&rf).collect::<Vec<_>>(),
                    rf
                );
                total_sets += 1;
                if alg != rf {
                    undercollected += 1;
                }
            }
        }
        // The static B-diffusible gate may under-collect in a rare corner;
        // it must stay rare or seed quality would degrade measurably.
        assert!(
            (undercollected as f64) < 0.02 * total_sets as f64,
            "under-collection too frequent: {undercollected}/{total_sets}"
        );
    }

    /// The memo pressure counters are surfaced, deterministic for a fixed
    /// seed, and show real re-probing in the case-4-heavy regime.
    #[test]
    fn memo_stats_are_surfaced_and_deterministic() {
        let run = || {
            let mut grng = SmallRng::seed_from_u64(77);
            let topo = gen::gnm(60, 400, &mut grng).unwrap();
            let g = comic_graph::prob::ProbModel::Constant(0.4).apply(&topo, &mut grng);
            // Low q_{A|∅} keeps most labels potential/suspended, which is
            // what drives Phase II into the case-4 loop test.
            let gap = Gap::new(0.05, 0.9, 0.3, 1.0).unwrap();
            let mut s = RrCimSampler::new(&g, gap, seeds(&[0, 1])).unwrap();
            assert_eq!(s.memo_stats().probes(), 0);
            let mut rng = SmallRng::seed_from_u64(78);
            let mut out = Vec::new();
            for _ in 0..300 {
                let root = NodeId(rng.random_range(0..60));
                s.sample(root, &mut rng, &mut out);
            }
            s.memo_stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "memo pressure must be reproducible per seed");
        assert!(a.probes() > 0, "sampling must surface memo probes");
        assert!(
            a.hits > 0,
            "phase II re-probes phase-I coins; zero hits means the memo broke: {a}"
        );
        assert!(a.hit_rate() < 1.0, "every world must draw fresh coins: {a}");
        // reset_memo_stats really zeroes.
        let mut grng = SmallRng::seed_from_u64(1);
        let topo = gen::gnm(10, 30, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.5).apply(&topo, &mut grng);
        let mut s = RrCimSampler::new(&g, cim_gap(), seeds(&[0])).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut out = Vec::new();
        s.sample(NodeId(3), &mut rng, &mut out);
        assert!(s.memo_stats().probes() > 0);
        s.reset_memo_stats();
        assert_eq!(s.memo_stats().probes(), 0);
    }

    #[test]
    fn members_are_distinct() {
        let mut grng = SmallRng::seed_from_u64(9);
        let topo = gen::gnm(30, 150, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.5).apply(&topo, &mut grng);
        let mut s = RrCimSampler::new(&g, cim_gap(), seeds(&[0, 1, 2])).unwrap();
        let mut rng = SmallRng::seed_from_u64(10);
        let mut out = Vec::new();
        for _ in 0..500 {
            let root = NodeId(rng.random_range(0..30));
            s.sample(root, &mut rng, &mut out);
            let mut sorted = out.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), out.len());
        }
    }

    #[test]
    fn width_accumulated_in_add_to_r_matches_indegree_sum() {
        let mut grng = SmallRng::seed_from_u64(11);
        let topo = gen::gnm(30, 150, &mut grng).unwrap();
        let g = comic_graph::prob::ProbModel::Constant(0.5).apply(&topo, &mut grng);
        let mut s = RrCimSampler::new(&g, cim_gap(), seeds(&[0, 1, 2])).unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        let mut out = Vec::new();
        for _ in 0..300 {
            let root = NodeId(rng.random_range(0..30));
            let w = s.sample_with_width(root, &mut rng, &mut out);
            let expect: u64 = out.iter().map(|&v| g.in_degree(v) as u64).sum();
            assert_eq!(w, expect);
        }
    }
}
