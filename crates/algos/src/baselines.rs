//! The paper's heuristic baselines: HighDegree, Random, Copying and
//! VanillaIC (§7).

use comic_graph::{DiGraph, NodeId};
use comic_ris::ic_sampler::IcRrSampler;
use comic_ris::tim::{TimConfig, TimResult};
use comic_ris::RisPipeline;
use rand::{Rng, RngExt};

use crate::error::AlgoError;

/// **HighDegree**: the `k` nodes with the highest out-degree (ties by lower
/// id).
pub fn high_degree(g: &DiGraph, k: usize) -> Vec<NodeId> {
    let mut order: Vec<u32> = (0..g.num_nodes() as u32).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.out_degree(NodeId(v))), v));
    order.into_iter().take(k).map(NodeId).collect()
}

/// **Random**: `k` distinct nodes uniformly at random.
pub fn random_nodes<R: Rng>(g: &DiGraph, k: usize, rng: &mut R) -> Vec<NodeId> {
    let n = g.num_nodes();
    let k = k.min(n);
    // Partial Fisher–Yates over the id range.
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = rng.random_range(i..n);
        ids.swap(i, j);
    }
    ids[..k].iter().copied().map(NodeId).collect()
}

/// **Copying**: adopt (up to) the first `k` of the opposite item's seeds —
/// the paper's Copying baseline takes the top-k B-seeds as A-seeds and vice
/// versa. When the opposite set is smaller than `k`, the remainder is filled
/// with the highest-out-degree unused nodes so the budget is spent.
pub fn copying(g: &DiGraph, opposite_seeds: &[NodeId], k: usize) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = opposite_seeds.iter().copied().take(k).collect();
    if out.len() < k {
        for v in high_degree(g, g.num_nodes()) {
            if out.len() == k {
                break;
            }
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

/// **VanillaIC**: run the RIS pipeline under the classic IC model, ignoring
/// the second item and the node-level automaton entirely. RR-set generation
/// is sharded across [`TimConfig::threads`] workers and seed selection uses
/// the configured [`TimConfig::selector`].
pub fn vanilla_ic(g: &DiGraph, cfg: &TimConfig) -> Result<TimResult, AlgoError> {
    Ok(RisPipeline::new(cfg.clone()).run(|| IcRrSampler::new(g))?)
}

/// The first `count` seeds in VanillaIC's greedy pick order — the paper's
/// experiments seed the *opposite* item with ranks 1–100 or 101–200 of this
/// ranking (Tables 2–4).
pub fn vanilla_ic_ranking(
    g: &DiGraph,
    count: usize,
    epsilon: f64,
    seed: u64,
) -> Result<Vec<NodeId>, AlgoError> {
    let cfg = TimConfig::new(count.min(g.num_nodes()))
        .epsilon(epsilon)
        .seed(seed);
    Ok(vanilla_ic(g, &cfg)?.seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_graph::gen;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn high_degree_picks_hubs() {
        let g = gen::star(30, 1.0);
        assert_eq!(high_degree(&g, 1), vec![NodeId(0)]);
        let top3 = high_degree(&g, 3);
        assert_eq!(top3[0], NodeId(0));
        assert_eq!(top3.len(), 3);
    }

    #[test]
    fn random_nodes_distinct_and_in_range() {
        let g = gen::path(50, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = random_nodes(&g, 10, &mut rng);
            assert_eq!(s.len(), 10);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 10);
            assert!(s.iter().all(|v| v.index() < 50));
        }
        // k > n clamps.
        assert_eq!(random_nodes(&g, 99, &mut rng).len(), 50);
    }

    #[test]
    fn copying_truncates_or_tops_up() {
        let g = gen::star(10, 1.0);
        let opp: Vec<NodeId> = vec![NodeId(3), NodeId(4), NodeId(5)];
        assert_eq!(copying(&g, &opp, 2), vec![NodeId(3), NodeId(4)]);
        let filled = copying(&g, &opp, 5);
        assert_eq!(filled.len(), 5);
        assert_eq!(&filled[..3], &opp[..]);
        // Top-up prefers the hub.
        assert!(filled.contains(&NodeId(0)));
    }

    #[test]
    fn vanilla_ic_finds_the_hub() {
        let g = gen::star(60, 1.0);
        let r = vanilla_ic(&g, &TimConfig::new(1)).unwrap();
        assert_eq!(r.seeds, vec![NodeId(0)]);
        let ranking = vanilla_ic_ranking(&g, 5, 0.5, 7).unwrap();
        assert_eq!(ranking.len(), 5);
        assert_eq!(ranking[0], NodeId(0));
    }
}
