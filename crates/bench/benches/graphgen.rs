//! Criterion: graph generator and substrate throughput.

use comic_graph::gen::{self, ChungLuConfig};
use comic_graph::prob::ProbModel;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_graphgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphgen");
    group.sample_size(10);

    group.bench_function("chung_lu_10k_nodes", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            black_box(
                gen::chung_lu(
                    &ChungLuConfig {
                        n: 10_000,
                        target_edges: 50_000,
                        exponent: 2.16,
                    },
                    &mut rng,
                )
                .unwrap(),
            )
        });
    });

    group.bench_function("gnm_10k_nodes", |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(2);
            black_box(gen::gnm(10_000, 50_000, &mut rng).unwrap())
        });
    });

    group.bench_function("weighted_cascade_assignment", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = gen::gnm(10_000, 50_000, &mut rng).unwrap();
        b.iter(|| black_box(ProbModel::WeightedCascade.apply(&g, &mut rng)));
    });

    group.bench_function("tarjan_scc_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        let g = gen::gnm(10_000, 50_000, &mut rng).unwrap();
        b.iter(|| black_box(comic_graph::scc::tarjan_scc(&g).num_components));
    });

    group.finish();
}

criterion_group!(benches, bench_graphgen);
criterion_main!(benches);
