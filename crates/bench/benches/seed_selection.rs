//! Criterion: the non-sampling halves of seed selection — KPT estimation,
//! greedy max-coverage over a stored RR-set arena, and CELF on a cheap
//! objective.

use comic_algos::greedy::celf;
use comic_bench::datasets::Dataset;
use comic_graph::NodeId;
use comic_ris::coverage::max_coverage;
use comic_ris::ic_sampler::IcRrSampler;
use comic_ris::kpt::kpt_star;
use comic_ris::rr::RrStore;
use comic_ris::sampler::RrSampler;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_seed_selection(c: &mut Criterion) {
    let g = Dataset::Flixster.instantiate(0.08);
    let n = g.num_nodes();

    // Pre-sample a store of 200k IC RR-sets.
    let mut sampler = IcRrSampler::new(&g);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut store = RrStore::with_capacity(200_000, 4);
    let mut out = Vec::new();
    for _ in 0..200_000 {
        sampler.sample_random(&mut rng, &mut out);
        store.push(&out, &g);
    }

    let mut group = c.benchmark_group("seed_selection");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(8));

    group.bench_function("max_coverage_k50_200k_sets", |b| {
        b.iter(|| black_box(max_coverage(&store, n, 50).covered));
    });

    group.bench_function("kpt_star_k50", |b| {
        b.iter(|| {
            let mut s = IcRrSampler::new(&g);
            let mut rng = SmallRng::seed_from_u64(2);
            black_box(kpt_star(&mut s, 50, 1.0, &mut rng).kpt)
        });
    });

    group.bench_function("celf_coverage_objective", |b| {
        // Deterministic weighted-coverage objective over 2k sets.
        let sets: Vec<(f64, Vec<u32>)> = (0..2_000u32)
            .map(|i| (1.0 + (i % 13) as f64, vec![i % 500, (i * 7) % 500]))
            .collect();
        let candidates: Vec<NodeId> = (0..500u32).map(NodeId).collect();
        b.iter(|| {
            let r = celf(&candidates, 20, |s: &[NodeId]| {
                sets.iter()
                    .filter(|(_, m)| m.iter().any(|&x| s.contains(&NodeId(x))))
                    .map(|(w, _)| w)
                    .sum()
            });
            black_box(r.seeds.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_seed_selection);
criterion_main!(benches);
