//! Criterion: the non-sampling halves of seed selection — KPT estimation,
//! the coverage-index build, and the selector strategies of the
//! `comic_ris::select` engine over a stored RR-set arena.
//!
//! The `selector_comparison` section measures the extracted selection
//! engine end-to-end on the scalability dataset: [`CoverageIndex::build`]
//! at 1 / 4 / all-cores threads, the **fused**
//! [`CoverageIndex::from_fragments`] merge that replaces it when the index
//! rides along with generation, then [`NaiveGreedy`] vs [`CelfGreedy`] at
//! `k = 50` — the latter both pinned scalar and on the active SIMD
//! kernels. It also **asserts** the determinism contract — parallel and
//! fused index builds byte-identical to sequential ones, CELF seed sets
//! byte-identical to the naive oracle's in every SIMD mode — so the
//! quick-mode CI smoke run fails if a selector ever diverges. Set
//! `COMIC_BENCH_JSON=<path>` to write the numbers as a JSON snapshot
//! (committed as `BENCH_seed_selection.json` at the repo root).

use comic_algos::greedy::celf;
use comic_bench::datasets::{bench_source, Dataset};
use comic_bench::runtime::timed;
use comic_graph::NodeId;
use comic_ris::ic_sampler::IcRrSampler;
use comic_ris::kpt::kpt_star;
use comic_ris::parallel::resolve_threads;
use comic_ris::rr::RrStore;
use comic_ris::sampler::RrSampler;
use comic_ris::select::{CelfGreedy, CoverageFragment, CoverageIndex, NaiveGreedy, SeedSelector};
use comic_ris::simd::{self, SimdMode};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sample_store(g: &comic_graph::DiGraph, count: usize) -> RrStore {
    let mut sampler = IcRrSampler::new(g);
    let mut rng = SmallRng::seed_from_u64(1);
    let mut store = RrStore::with_capacity(count, 4);
    let mut out = Vec::new();
    for _ in 0..count {
        let (_, width) = sampler.sample_random_with_width(&mut rng, &mut out);
        store.push_with_width(&out, width);
    }
    store
}

fn bench_seed_selection(c: &mut Criterion) {
    let g = bench_source(Dataset::Flixster).graph(0.08);
    let n = g.num_nodes();
    let quick = criterion::quick_mode();
    let store = sample_store(&g, if quick { 5_000 } else { 200_000 });

    let mut group = c.benchmark_group("seed_selection");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(8));

    group.bench_function("coverage_index_build_1t", |b| {
        b.iter(|| black_box(CoverageIndex::build(&store, n, 1).total_entries()));
    });

    group.bench_function("celf_select_k50", |b| {
        let index = CoverageIndex::build(&store, n, 1);
        b.iter(|| black_box(CelfGreedy { threads: 1 }.select(&index, &store, 50).covered));
    });

    group.bench_function("kpt_star_k50", |b| {
        b.iter(|| {
            let mut s = IcRrSampler::new(&g);
            let mut rng = SmallRng::seed_from_u64(2);
            black_box(kpt_star(&mut s, 50, 1.0, &mut rng).kpt)
        });
    });

    group.bench_function("celf_mc_objective", |b| {
        // The Monte-Carlo CELF of comic_algos on a deterministic
        // weighted-coverage objective over 2k sets.
        let sets: Vec<(f64, Vec<u32>)> = (0..2_000u32)
            .map(|i| (1.0 + (i % 13) as f64, vec![i % 500, (i * 7) % 500]))
            .collect();
        let candidates: Vec<NodeId> = (0..500u32).map(NodeId).collect();
        b.iter(|| {
            let r = celf(&candidates, 20, |s: &[NodeId]| {
                sets.iter()
                    .filter(|(_, m)| m.iter().any(|&x| s.contains(&NodeId(x))))
                    .map(|(w, _)| w)
                    .sum()
            });
            black_box(r.seeds.len())
        });
    });

    group.finish();
}

/// One wall-clock measurement of the selector_comparison section.
struct Run {
    label: String,
    threads: usize,
    secs: f64,
}

/// Whole-batch wall-clock comparison of the selection engine, with the
/// naive-vs-CELF cross-check assertion CI relies on.
fn bench_selector_comparison(c: &mut Criterion) {
    // The group exists so the section shows up in criterion's output
    // ordering; the real measurements below need whole-batch wall-clock
    // numbers for the JSON snapshot, not per-iter medians.
    let mut group = c.benchmark_group("selector_comparison");
    group.finish();

    let quick = criterion::quick_mode();
    let sets: usize = if quick { 5_000 } else { 200_000 };
    let k = 50;
    let g = bench_source(Dataset::Flixster).graph(if quick { 0.04 } else { 0.08 });
    let n = g.num_nodes();
    let store = sample_store(&g, sets);

    let mut runs: Vec<Run> = Vec::new();

    // Index builds: sequential, 4 workers, all cores.
    let (index, secs) = timed(|| CoverageIndex::build(&store, n, 1));
    runs.push(Run {
        label: "index_build".into(),
        threads: 1,
        secs,
    });
    let max_threads = resolve_threads(0);
    let mut thread_counts = vec![4usize, max_threads];
    thread_counts.retain(|&t| t != 1);
    thread_counts.dedup();
    for threads in thread_counts {
        let (parallel, secs) = timed(|| CoverageIndex::build(&store, n, threads));
        assert_eq!(
            parallel, index,
            "parallel index build diverged at {threads} threads"
        );
        runs.push(Run {
            label: "index_build".into(),
            threads,
            secs,
        });
    }

    // Fused builds: in production the fragments are maintained *during*
    // generation (their histogram updates ride inside sampling and the
    // per-shard seal runs on the workers), so the timed portion here is
    // exactly what replaces the standalone build at merge time —
    // `CoverageIndex::from_fragments`. Fragment construction is untimed.
    let shard_fragments = || -> Vec<CoverageFragment> {
        let parts = 4usize;
        let per = store.len() / parts;
        let extra = store.len() % parts;
        let mut fragments = Vec::with_capacity(parts);
        let mut at = 0usize;
        for t in 0..parts {
            let share = per + usize::from(t < extra);
            let mut shard = RrStore::with_capacity(share, 4);
            for i in at..at + share {
                shard.push_with_width(store.set(i), store.width(i));
            }
            at += share;
            fragments.push(CoverageFragment::over_store(&shard, n));
        }
        fragments
    };
    // Mirror the standalone rows (1 / 4 / all cores) so the fused-vs-
    // standalone comparison reads off the snapshot directly.
    let mut fused_threads = vec![1usize, 4, max_threads];
    fused_threads.sort_unstable();
    fused_threads.dedup();
    for threads in fused_threads {
        let fragments = shard_fragments();
        let (fused, secs) = timed(|| CoverageIndex::from_fragments(fragments, n, threads));
        assert_eq!(
            fused, index,
            "fused index build diverged from standalone at {threads} threads"
        );
        runs.push(Run {
            label: "index_build_fused".into(),
            threads,
            secs,
        });
    }

    // Selectors: the naive oracle vs CELF, the latter pinned scalar and on
    // the active (auto-dispatched) SIMD kernels. Every row must agree.
    let (naive, secs) = timed(|| NaiveGreedy.select(&index, &store, k));
    runs.push(Run {
        label: "select_naive".into(),
        threads: 1,
        secs,
    });
    let mut celf_threads = vec![1usize, max_threads];
    celf_threads.dedup();
    for threads in celf_threads.clone() {
        let (celf_r, secs) =
            timed(|| CelfGreedy { threads }.select_with(&index, &store, k, SimdMode::Scalar));
        // The determinism contract CI enforces: byte-identical seed sets.
        assert_eq!(
            celf_r, naive,
            "CELF (scalar) diverged from the naive-greedy oracle at {threads} threads"
        );
        runs.push(Run {
            label: "select_celf".into(),
            threads,
            secs,
        });
    }
    for threads in celf_threads {
        let (celf_r, secs) =
            timed(|| CelfGreedy { threads }.select_with(&index, &store, k, simd::active()));
        assert_eq!(
            celf_r,
            naive,
            "CELF ({}) diverged from the naive-greedy oracle at {threads} threads",
            simd::active().name()
        );
        runs.push(Run {
            label: "select_celf_simd".into(),
            threads,
            secs,
        });
    }

    for r in &runs {
        println!(
            "bench: selector_comparison/{}/threads={} ... {:.4}s",
            r.label, r.threads, r.secs
        );
    }
    println!(
        "bench: selector_comparison cross-check OK — CELF == naive greedy on {} sets (k={k})",
        store.len()
    );

    comic_bench::runtime::write_json_snapshot(
        "seed_selection",
        &[
            ("host_cores", resolve_threads(0).to_string()),
            (
                "graph",
                format!(
                    "{{ \"model\": \"flixster stand-in (chung_lu + weighted_cascade)\", \"nodes\": {}, \"edges\": {} }}",
                    n,
                    g.num_edges()
                ),
            ),
            ("rr_sets", store.len().to_string()),
            ("k", k.to_string()),
            ("total_members", store.total_members().to_string()),
            ("simd", format!("\"{}\"", simd::active().name())),
            (
                "note",
                "\"selectors return byte-identical seed sets across selectors, threads, and SIMD modes (asserted); index_build_fused times only the merge-time from_fragments materialization (fragment histograms ride inside generation in production); select_celf is pinned scalar, select_celf_simd runs the active kernels; on a host where host_cores = 1 the multi-thread rows measure pure oversubscription overhead\"".into(),
            ),
        ],
        &runs
            .iter()
            .map(|r| {
                vec![
                    ("label", format!("\"{}\"", r.label)),
                    ("threads", r.threads.to_string()),
                    ("secs", format!("{:.4}", r.secs)),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

criterion_group!(benches, bench_seed_selection, bench_selector_comparison);
criterion_main!(benches);
