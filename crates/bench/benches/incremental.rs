//! Criterion: incremental RR-sketch maintenance under edge deltas vs
//! regenerating the pool from scratch — the update-throughput story of the
//! delta ingestion layer. Both paths run through the identical
//! `refresh_pool_marked` machinery (the "full" rows mark every set), so
//! the comparison isolates exactly the work the touch-provenance screen
//! avoids.
//!
//! `COMIC_BENCH_JSON=BENCH_incremental.json cargo bench --bench incremental`
//! writes the committed snapshot.

use comic_bench::datasets;
use comic_graph::{DiGraph, EdgeDelta};
use comic_ris::ic_sampler::IcRrSampler;
use comic_ris::pipeline::refresh_pool_marked;
use comic_ris::tim::TimConfig;
use comic_ris::{RisPipeline, SketchPool};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 0xD317A;
const THREADS: usize = 2;

/// Remove every `stride`-th edge until `ratio_bp` basis points of the edge
/// count are covered — deterministic and spread across the whole graph, so
/// the invalidation sweep sees no artificial locality.
fn delta_batch(g: &DiGraph, ratio_bp: usize) -> Vec<EdgeDelta> {
    let m = g.num_edges();
    let count = (m * ratio_bp / 10_000).max(1);
    let stride = (m / count).max(1);
    g.edges()
        .step_by(stride)
        .take(count)
        .map(|(_, e)| EdgeDelta::Remove {
            source: e.source,
            target: e.target,
        })
        .collect()
}

struct Row {
    label: String,
    delta_bp: usize,
    secs: f64,
    sets_regenerated: usize,
}

fn timed_refresh(pool: &SketchPool, marks: &[bool], g: &Arc<DiGraph>, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(refresh_pool_marked(
            pool,
            marks,
            || IcRrSampler::new(g),
            THREADS,
        ));
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn bench_incremental(c: &mut Criterion) {
    let loaded = datasets::load("fixture-medium").expect("fixture-medium fixture");
    let g = Arc::clone(&loaded.graph);
    let pool = RisPipeline::new(
        TimConfig::new(10)
            .seed(SEED)
            .threads(THREADS)
            .max_rr_sets(60_000),
    )
    .generate_pool(|| IcRrSampler::new(&g))
    .expect("IC pool over fixture-medium");
    let total_sets = pool.len();
    let all_marks = vec![true; total_sets];

    let mut group = c.benchmark_group("incremental_refresh");
    group.sample_size(10);
    let mut rows: Vec<Row> = Vec::new();

    // 0.1% and 1% of edges deleted — the regime the staleness bound keeps
    // the incremental path in.
    for ratio_bp in [10usize, 100] {
        let deltas = delta_batch(&g, ratio_bp);
        let g2 = Arc::new(g.apply_deltas(&deltas).expect("compaction"));
        let marks = pool
            .invalidate(&deltas)
            .expect("IC pools carry touch provenance");
        let dirty = marks.iter().filter(|&&m| m).count();

        group.bench_function(&format!("incremental/{ratio_bp}bp"), |b| {
            b.iter(|| {
                black_box(refresh_pool_marked(
                    &pool,
                    &marks,
                    || IcRrSampler::new(&g2),
                    THREADS,
                ))
            })
        });
        group.bench_function(&format!("full/{ratio_bp}bp"), |b| {
            b.iter(|| {
                black_box(refresh_pool_marked(
                    &pool,
                    &all_marks,
                    || IcRrSampler::new(&g2),
                    THREADS,
                ))
            })
        });

        rows.push(Row {
            label: format!("incremental/{ratio_bp}bp"),
            delta_bp: ratio_bp,
            secs: timed_refresh(&pool, &marks, &g2, 3),
            sets_regenerated: dirty,
        });
        rows.push(Row {
            label: format!("full_rebuild/{ratio_bp}bp"),
            delta_bp: ratio_bp,
            secs: timed_refresh(&pool, &all_marks, &g2, 3),
            sets_regenerated: total_sets,
        });
    }
    group.finish();

    for pair in rows.chunks(2) {
        println!(
            "bench: incremental/{}bp ... {:.4}s ({} of {} sets) vs full {:.4}s — {:.1}x",
            pair[0].delta_bp,
            pair[0].secs,
            pair[0].sets_regenerated,
            total_sets,
            pair[1].secs,
            pair[1].secs / pair[0].secs.max(1e-9),
        );
    }

    comic_bench::runtime::write_json_snapshot(
        "incremental",
        &[
            (
                "graph",
                format!(
                    "{{ \"dataset\": \"fixture-medium\", \"nodes\": {}, \"edges\": {} }}",
                    g.num_nodes(),
                    g.num_edges()
                ),
            ),
            ("sketches", total_sets.to_string()),
            ("threads", THREADS.to_string()),
            (
                "note",
                "\"both paths run refresh_pool_marked; 'full_rebuild' rows mark every set, so the gap is exactly the resampling the bloom screen avoids\"".into(),
            ),
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    ("label", format!("\"{}\"", r.label)),
                    ("delta_bp", r.delta_bp.to_string()),
                    ("secs", format!("{:.4}", r.secs)),
                    ("sets_regenerated", r.sets_regenerated.to_string()),
                    ("total_sets", total_sets.to_string()),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
