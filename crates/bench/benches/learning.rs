//! Criterion: the learning layer — edge influence-probability learning,
//! GAP estimation, and the parallel graph generators — plus the
//! `LazyWorld` memoization-pressure probe for RR-CIM's case-4 loop.
//!
//! The `learning_comparison` section measures `learn_influence` /
//! `learn_gaps_with` / the `gen::par` generators at 1 / 4 / all-cores
//! worker threads and **asserts** the learning-layer determinism contract
//! (byte-identical output for every thread count) so the quick-mode CI
//! smoke run fails on a divergence. The `lazy_world_memo` section surfaces
//! the RR-CIM memo hit rate on the fixture-small corpus — the profiling
//! gap the ROADMAP called out — and asserts it stays in a sane band. Set
//! `COMIC_BENCH_JSON=<path>` to write the numbers as a JSON snapshot
//! (committed as `BENCH_learning.json` at the repo root).

use comic_actionlog::synth::{synthesize_pair_log, SynthConfig};
use comic_actionlog::{
    learn_gaps_with, learn_influence, GapLearnConfig, InfluenceLearnConfig, ItemId,
};
use comic_algos::rr_cim::RrCimSampler;
use comic_bench::datasets::{find_spec, load_spec, CacheMode};
use comic_bench::runtime::timed;
use comic_core::Gap;
use comic_graph::gen::{self, ParGen};
use comic_graph::io::graph_digest;
use comic_graph::par::resolve_threads;
use comic_graph::prob::ProbModel;
use comic_graph::{DiGraph, NodeId};
use comic_ris::sampler::RrSampler;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

/// The learning substrate: a mid-size power-law graph plus a node-cohort
/// action log synthesized on it (the shape `influence_learn` sees in the
/// dataset pipeline).
fn substrate(quick: bool) -> (DiGraph, comic_actionlog::ActionLog) {
    let (n, m, sessions) = if quick {
        (800, 4_000, 40)
    } else {
        (8_000, 40_000, 300)
    };
    let mut rng = SmallRng::seed_from_u64(0x1EA2);
    let topo = gen::chung_lu(
        &gen::ChungLuConfig {
            n,
            target_edges: m,
            exponent: 2.16,
        },
        &mut rng,
    )
    .unwrap();
    let g = ProbModel::WeightedCascade.apply(&topo, &mut rng);
    let log = synthesize_pair_log(
        &g,
        Gap::new(0.5, 0.75, 0.5, 0.75).unwrap(),
        ItemId(0),
        ItemId(1),
        &SynthConfig {
            sessions,
            seeds_per_item: 3,
            fresh_cohorts: false,
        },
        &mut rng,
    );
    (g, log)
}

fn bench_learning(c: &mut Criterion) {
    let quick = criterion::quick_mode();
    let (g, log) = substrate(quick);

    let mut group = c.benchmark_group("learning");
    group.sample_size(10);

    group.bench_function("influence_learn_1t", |b| {
        let cfg = InfluenceLearnConfig {
            tau: 100_000,
            default_p: 0.0,
            threads: 1,
        };
        b.iter(|| black_box(learn_influence(&g, &log, &cfg).num_edges()));
    });

    group.bench_function("influence_learn_4t", |b| {
        let cfg = InfluenceLearnConfig {
            tau: 100_000,
            default_p: 0.0,
            threads: 4,
        };
        b.iter(|| black_box(learn_influence(&g, &log, &cfg).num_edges()));
    });

    group.bench_function("learn_gaps_1t", |b| {
        b.iter(|| {
            black_box(
                learn_gaps_with(&log, ItemId(0), ItemId(1), &GapLearnConfig { threads: 1 })
                    .map(|l| l.q_a0.samples),
            )
        });
    });

    group.bench_function("chung_lu_par_4t", |b| {
        let cfg = gen::ChungLuConfig {
            n: if quick { 2_000 } else { 50_000 },
            target_edges: if quick { 10_000 } else { 250_000 },
            exponent: 2.16,
        };
        b.iter(|| {
            black_box(
                gen::chung_lu_par(&cfg, &ParGen::with_threads(5, 4))
                    .unwrap()
                    .num_edges(),
            )
        });
    });

    group.bench_function("gnm_par_4t", |b| {
        let (n, m) = if quick {
            (2_000, 10_000)
        } else {
            (50_000, 250_000)
        };
        b.iter(|| {
            black_box(
                gen::gnm_par(n, m, &ParGen::with_threads(6, 4))
                    .unwrap()
                    .num_edges(),
            )
        });
    });

    group.finish();
}

/// One wall-clock measurement of the learning_comparison section.
struct Run {
    label: String,
    threads: usize,
    secs: f64,
}

/// Whole-batch wall-clock comparison of the learning layer and the
/// parallel generators, with the thread-invariance assertions CI relies
/// on, plus the LazyWorld memo-pressure probe.
fn bench_learning_comparison(c: &mut Criterion) {
    // The group exists so the section shows up in criterion's output
    // ordering; the real measurements below need whole-batch wall-clock
    // numbers for the JSON snapshot, not per-iter medians.
    let mut group = c.benchmark_group("learning_comparison");
    group.finish();

    let quick = criterion::quick_mode();
    let (g, log) = substrate(quick);
    let max_threads = resolve_threads(0);
    let mut thread_counts = vec![1usize, 4, max_threads];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    let mut runs: Vec<Run> = Vec::new();

    // Influence learning: thread sweep, digest-asserted.
    let mut influence_digest = None;
    for &threads in &thread_counts {
        let cfg = InfluenceLearnConfig {
            tau: 100_000,
            default_p: 0.0,
            threads,
        };
        let (learned, secs) = timed(|| learn_influence(&g, &log, &cfg));
        let d = graph_digest(&learned);
        let base = *influence_digest.get_or_insert(d);
        assert_eq!(d, base, "learn_influence diverged at {threads} threads");
        runs.push(Run {
            label: "influence_learn".into(),
            threads,
            secs,
        });
    }

    // GAP learning: thread sweep, estimate-asserted.
    let mut gap_bits = None;
    for &threads in &thread_counts {
        let (l, secs) = timed(|| {
            learn_gaps_with(&log, ItemId(0), ItemId(1), &GapLearnConfig { threads })
                .expect("synthetic log has every denominator")
        });
        let bits = [
            l.q_a0.value.to_bits(),
            l.q_ab.value.to_bits(),
            l.q_b0.value.to_bits(),
            l.q_ba.value.to_bits(),
        ];
        let base = *gap_bits.get_or_insert(bits);
        assert_eq!(bits, base, "learn_gaps diverged at {threads} threads");
        runs.push(Run {
            label: "learn_gaps".into(),
            threads,
            secs,
        });
    }

    // Generators: thread sweep on the heaviest par generator, digest-asserted.
    let gen_cfg = gen::ChungLuConfig {
        n: if quick { 2_000 } else { 50_000 },
        target_edges: if quick { 10_000 } else { 250_000 },
        exponent: 2.16,
    };
    let mut gen_digest = None;
    for &threads in &thread_counts {
        let (built, secs) =
            timed(|| gen::chung_lu_par(&gen_cfg, &ParGen::with_threads(5, threads)).unwrap());
        let d = graph_digest(&built);
        let base = *gen_digest.get_or_insert(d);
        assert_eq!(d, base, "chung_lu_par diverged at {threads} threads");
        runs.push(Run {
            label: "chung_lu_par".into(),
            threads,
            secs,
        });
    }

    for r in &runs {
        println!(
            "bench: learning_comparison/{}/threads={} ... {:.4}s",
            r.label, r.threads, r.secs
        );
    }
    println!(
        "bench: learning_comparison cross-check OK — learning layer byte-identical across \
         threads {{1, 4, {max_threads}}}"
    );

    // LazyWorld memo pressure in RR-CIM (the ROADMAP's unprofiled corner):
    // sample on the fixture-small corpus and surface the hit rate.
    let fixture = load_spec(
        find_spec("fixture-small").expect("fixture-small is registered"),
        CacheMode::Off,
    )
    .expect("committed fixture loads");
    let fg = &fixture.graph;
    let gap = Gap::new(0.2, 0.8, 0.4, 1.0).unwrap();
    let seeds: Vec<NodeId> = (0..10u32).map(NodeId).collect();
    let samples = if quick { 300 } else { 3_000 };
    let (memo, secs) = timed(|| {
        let mut sampler = RrCimSampler::new(fg, gap, seeds.clone()).expect("CIM regime");
        let mut rng = SmallRng::seed_from_u64(0xCA5E4);
        let mut out = Vec::new();
        for _ in 0..samples {
            let root = NodeId(rng.random_range(0..fg.num_nodes() as u32));
            sampler.sample(root, &mut rng, &mut out);
        }
        sampler.memo_stats()
    });
    println!(
        "bench: lazy_world_memo/rr_cim_fixture_small ... {secs:.4}s — {memo} over {samples} samples"
    );
    assert!(memo.probes() > 0, "sampling must probe the memo");
    assert!(
        memo.hit_rate() > 0.0 && memo.hit_rate() < 1.0,
        "memo hit rate out of band: {memo}"
    );
    runs.push(Run {
        label: "rr_cim_memo_probe".into(),
        threads: 1,
        secs,
    });

    comic_bench::runtime::write_json_snapshot(
        "learning",
        &[
            ("host_cores", max_threads.to_string()),
            (
                "graph",
                format!(
                    "{{ \"model\": \"chung_lu 2.16 + weighted_cascade\", \"nodes\": {}, \"edges\": {} }}",
                    g.num_nodes(),
                    g.num_edges()
                ),
            ),
            ("log_records", log.len().to_string()),
            (
                "memo",
                format!(
                    "{{ \"probes\": {}, \"hits\": {}, \"hit_rate\": {:.4}, \"rr_cim_samples\": {samples} }}",
                    memo.probes(),
                    memo.hits,
                    memo.hit_rate()
                ),
            ),
            (
                "note",
                "\"learning output is byte-identical across thread counts (asserted); on a host where host_cores = 1 the multi-thread rows measure pure oversubscription overhead\"".into(),
            ),
        ],
        &runs
            .iter()
            .map(|r| {
                vec![
                    ("label", format!("\"{}\"", r.label)),
                    ("threads", r.threads.to_string()),
                    ("secs", format!("{:.4}", r.secs)),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

criterion_group!(benches, bench_learning, bench_learning_comparison);
criterion_main!(benches);
