//! Criterion: RR-set generation rates for the four samplers — the inner
//! loop of GeneralTIM and the quantity the paper's Figure 7 comparisons
//! ultimately measure (EPT per sample).

use comic_bench::datasets::{bench_source, Dataset};
use comic_bench::exp::common::OppositeMode;
use comic_core::Gap;
use comic_ris::ic_sampler::IcRrSampler;
use comic_ris::sampler::RrSampler;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let src = bench_source(Dataset::Flixster);
    let g = src.graph(0.08);
    let lg = src.gap();
    let gap_sim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, lg.q_b0).unwrap();
    let gap_cim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, 1.0).unwrap();
    let opposite = OppositeMode::Random100.seeds(&g, 100, 7);

    let mut group = c.benchmark_group("rr_samplers");
    group.sample_size(20);
    let mut out = Vec::new();

    group.bench_function("ic", |b| {
        let mut s = IcRrSampler::new(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            s.sample_random(&mut rng, &mut out);
            black_box(out.len())
        });
    });

    group.bench_function("rr_sim", |b| {
        let mut s =
            comic_algos::RrSimSampler::new(&g, gap_sim, opposite.clone()).expect("valid regime");
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            s.sample_random(&mut rng, &mut out);
            black_box(out.len())
        });
    });

    group.bench_function("rr_sim_plus", |b| {
        let mut s = comic_algos::RrSimPlusSampler::new(&g, gap_sim, opposite.clone())
            .expect("valid regime");
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            s.sample_random(&mut rng, &mut out);
            black_box(out.len())
        });
    });

    group.bench_function("rr_cim", |b| {
        let mut s =
            comic_algos::RrCimSampler::new(&g, gap_cim, opposite.clone()).expect("valid regime");
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter(|| {
            s.sample_random(&mut rng, &mut out);
            black_box(out.len())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
