//! Criterion: GeneralTIM end-to-end over growing power-law graphs — the
//! microbenchmark twin of Figure 7(b). The shape to observe is near-linear
//! growth of time with graph size for all three samplers.

use comic_bench::datasets::{scalability_series, Dataset};
use comic_bench::exp::common::OppositeMode;
use comic_core::Gap;
use comic_ris::tim::{general_tim, TimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let lg = Dataset::Flixster.learned_gap();
    let gap_sim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, lg.q_b0).unwrap();
    let gap_cim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, 1.0).unwrap();

    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(8));

    for (n, g) in scalability_series(&[5_000, 10_000, 20_000]) {
        let opposite = OppositeMode::Random100.seeds(&g, 100, 7);
        let cfg = {
            let mut cfg = TimConfig::new(10).epsilon(0.5).seed(1);
            cfg.max_rr_sets = Some(100_000);
            cfg
        };
        group.bench_with_input(BenchmarkId::new("rr_sim_plus", n), &g, |b, g| {
            b.iter(|| {
                let mut s =
                    comic_algos::RrSimPlusSampler::new(g, gap_sim, opposite.clone()).unwrap();
                black_box(general_tim(&mut s, &cfg).unwrap().covered)
            });
        });
        group.bench_with_input(BenchmarkId::new("rr_cim", n), &g, |b, g| {
            b.iter(|| {
                let mut s = comic_algos::RrCimSampler::new(g, gap_cim, opposite.clone()).unwrap();
                black_box(general_tim(&mut s, &cfg).unwrap().covered)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
