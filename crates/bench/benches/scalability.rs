//! Criterion: GeneralTIM end-to-end over growing power-law graphs — the
//! microbenchmark twin of Figure 7(b). The shape to observe is near-linear
//! growth of time with graph size for all three samplers.
//!
//! The `rr_generation` section measures raw RR-set generation throughput
//! (the wall-clock bottleneck of the whole pipeline): the pre-optimization
//! sequential loop (single sampler, per-set `in_degree` width pass) against
//! the sharded generator at 1, 4 and all-cores threads. Set
//! `COMIC_BENCH_JSON=<path>` to also write the numbers as a JSON snapshot
//! (committed as `BENCH_rr_generation.json` at the repo root).

use comic_bench::datasets::{bench_source, scalability_series, Dataset};
use comic_bench::exp::common::OppositeMode;
use comic_bench::runtime::timed;
use comic_core::Gap;
use comic_graph::DiGraph;
use comic_ris::parallel::{resolve_threads, ShardedGenerator};
use comic_ris::rr::RrStore;
use comic_ris::sampler::RrSampler;
use comic_ris::tim::{general_tim, TimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_scalability(c: &mut Criterion) {
    let lg = bench_source(Dataset::Flixster).gap();
    let gap_sim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, lg.q_b0).unwrap();
    let gap_cim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, 1.0).unwrap();

    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(8));

    for (n, g) in scalability_series(&[5_000, 10_000, 20_000]) {
        let opposite = OppositeMode::Random100.seeds(&g, 100, 7);
        let cfg = {
            let mut cfg = TimConfig::new(10).epsilon(0.5).seed(1);
            cfg.max_rr_sets = Some(100_000);
            cfg
        };
        group.bench_with_input(BenchmarkId::new("rr_sim_plus", n), &g, |b, g| {
            b.iter(|| {
                let mut s =
                    comic_algos::RrSimPlusSampler::new(g, gap_sim, opposite.clone()).unwrap();
                black_box(general_tim(&mut s, &cfg).unwrap().covered)
            });
        });
        group.bench_with_input(BenchmarkId::new("rr_cim", n), &g, |b, g| {
            b.iter(|| {
                let mut s = comic_algos::RrCimSampler::new(g, gap_cim, opposite.clone()).unwrap();
                black_box(general_tim(&mut s, &cfg).unwrap().covered)
            });
        });
    }
    group.finish();
}

/// One throughput measurement of the rr_generation section.
struct GenRate {
    label: String,
    threads: usize,
    secs: f64,
    sets_per_sec: f64,
    members_per_sec: f64,
}

fn rate(label: &str, threads: usize, secs: f64, store: &RrStore) -> GenRate {
    GenRate {
        label: label.to_string(),
        threads,
        secs,
        sets_per_sec: store.len() as f64 / secs,
        members_per_sec: store.total_members() as f64 / secs,
    }
}

/// The pre-optimization generation loop, kept verbatim as the baseline:
/// one sampler, `sample_random` (no width from the BFS), and the
/// width-recomputing `RrStore::push`.
fn baseline_generate<S: RrSampler>(mut sampler: S, g: &DiGraph, theta: u64, seed: u64) -> RrStore {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = RrStore::new();
    let mut out = Vec::new();
    for _ in 0..theta {
        sampler.sample_random(&mut rng, &mut out);
        store.push(&out, g);
    }
    store
}

fn measure_generation<S, F>(
    label: &str,
    factory: F,
    g: &DiGraph,
    theta: u64,
    results: &mut Vec<GenRate>,
) where
    S: RrSampler,
    F: Fn() -> S + Sync,
{
    let (store, secs) = timed(|| baseline_generate(factory(), g, theta, 0xba5e));
    results.push(rate(
        &format!("{label}/baseline_sequential"),
        1,
        secs,
        &store,
    ));
    let max_threads = resolve_threads(0);
    let mut thread_counts = vec![1usize, 4];
    if !thread_counts.contains(&max_threads) {
        thread_counts.push(max_threads);
    }
    for threads in thread_counts {
        let gen = ShardedGenerator::new(&factory, 0x5eed, threads);
        let (store, secs) = timed(|| gen.generate(theta, 8));
        results.push(rate(&format!("{label}/sharded"), threads, secs, &store));
    }
}

fn bench_rr_generation(c: &mut Criterion) {
    // The group exists so the section shows up in criterion's output
    // ordering; the real measurements below need whole-batch wall-clock
    // numbers (for throughput + the JSON snapshot), not per-iter medians.
    let mut group = c.benchmark_group("rr_generation");
    group.finish();

    let quick = criterion::quick_mode();
    let theta: u64 = if quick { 2_000 } else { 1_000_000 };
    let (n, g) = scalability_series(&[20_000]).pop().expect("one size");
    let lg = Dataset::Flixster.learned_gap();
    let gap_sim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, lg.q_b0).unwrap();
    let opposite = OppositeMode::Random100.seeds(&g, 100, 7);

    let mut results: Vec<GenRate> = Vec::new();
    measure_generation(
        "ic",
        || comic_ris::ic_sampler::IcRrSampler::new(&g),
        &g,
        theta,
        &mut results,
    );
    measure_generation(
        "rr_sim_plus",
        || comic_algos::RrSimPlusSampler::new(&g, gap_sim, opposite.clone()).unwrap(),
        &g,
        theta,
        &mut results,
    );

    for r in &results {
        println!(
            "bench: rr_generation/{}/threads={} ... {:.3}s ({:.0} sets/s, {:.0} members/s)",
            r.label, r.threads, r.secs, r.sets_per_sec, r.members_per_sec
        );
    }

    comic_bench::runtime::write_json_snapshot(
        "rr_generation",
        &[
            ("host_cores", resolve_threads(0).to_string()),
            (
                "graph",
                format!(
                    "{{ \"model\": \"chung_lu(2.16) + weighted_cascade\", \"nodes\": {}, \"edges\": {} }}",
                    n,
                    g.num_edges()
                ),
            ),
            ("theta", theta.to_string()),
            (
                "note",
                "\"shards are fully independent, so throughput scales with physical cores; on a host where host_cores <= threads the extra workers only add oversubscription overhead\"".into(),
            ),
        ],
        &results
            .iter()
            .map(|r| {
                vec![
                    ("label", format!("\"{}\"", r.label)),
                    ("threads", r.threads.to_string()),
                    ("secs", format!("{:.4}", r.secs)),
                    ("sets_per_sec", format!("{:.0}", r.sets_per_sec)),
                    ("members_per_sec", format!("{:.0}", r.members_per_sec)),
                ]
            })
            .collect::<Vec<_>>(),
    );
}

criterion_group!(benches, bench_scalability, bench_rr_generation);
criterion_main!(benches);
