//! Criterion: Monte-Carlo diffusion throughput — the engine behind every
//! spread evaluation in the paper's tables (10K simulations each).

use comic_bench::datasets::{bench_source, Dataset};
use comic_core::oracle::CoinOracle;
use comic_core::possible_world::WorldOracle;
use comic_core::seeds::{seeds, SeedPair};
use comic_core::simulate::CascadeEngine;
use comic_core::Gap;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let src = bench_source(Dataset::Flixster);
    let g = src.graph(0.08);
    let gap = src.gap();
    let sp = SeedPair::new(seeds(&[0, 1, 2, 3, 4]), seeds(&[5, 6, 7, 8, 9]));

    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);

    group.bench_function("comic_coin_oracle", |b| {
        let mut engine = CascadeEngine::new(&g);
        let mut oracle = CoinOracle::new(g.num_edges(), SmallRng::seed_from_u64(1));
        b.iter(|| black_box(engine.run(&gap, &sp, &mut oracle)));
    });

    group.bench_function("comic_world_oracle", |b| {
        let mut engine = CascadeEngine::new(&g);
        let mut oracle = WorldOracle::new(g.num_nodes(), g.num_edges(), SmallRng::seed_from_u64(2));
        b.iter(|| black_box(engine.run(&gap, &sp, &mut oracle)));
    });

    group.bench_function("classic_ic", |b| {
        let mut sim = comic_core::ic::IcSimulator::new(&g);
        let mut rng = SmallRng::seed_from_u64(3);
        let s = seeds(&[0, 1, 2, 3, 4]);
        b.iter(|| black_box(sim.run(&s, &mut rng)));
    });

    group.bench_function("pure_competition", |b| {
        let mut engine = CascadeEngine::new(&g);
        let mut oracle = CoinOracle::new(g.num_edges(), SmallRng::seed_from_u64(4));
        let cgap = Gap::competitive_ic();
        b.iter(|| black_box(engine.run(&cgap, &sp, &mut oracle)));
    });

    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
