//! The dataset subsystem: a named registry of on-disk graphs (committed
//! fixtures plus slots for the paper's real SNAP exports) with transparent
//! digest-validated binary caching, and the synthetic stand-ins for the
//! paper's four datasets (Table 1).
//!
//! | name         | paper |V| | paper |E| | avg out | max out | provenance            |
//! |--------------|-----------|-----------|---------|---------|------------------------|
//! | Douban-Book  | 23.3K     | 141K      | 6.5     | 1690    | follower links, directed |
//! | Douban-Movie | 34.9K     | 274K      | 7.9     | 545     | follower links, directed |
//! | Flixster     | 12.9K     | 192K      | 14.8    | 189     | friendships, SCC, bidirected |
//! | Last.fm      | 61K       | 584K      | 9.6     | 1073    | friendships, bidirected |
//!
//! The stand-ins are Chung–Lu power-law graphs whose exponents are tuned so
//! the out-degree skew brackets the reported maxima at full scale, with
//! weighted-cascade edge probabilities (the standard proxy for the paper's
//! learned probabilities — DESIGN.md §2). Everything is deterministic given
//! the scale factor.
//!
//! On-disk datasets flow `file → ProbAssignment → manifest validation →
//! driver`: [`load`] resolves a registry name (or a bare path) to a SNAP or
//! edge-list text file, parses it once, applies the configured probability
//! model, checks the result against the manifest's expected node/edge
//! counts, and drops a versioned binary cache next to the source so every
//! later run memory-loads the bytes after a digest check. [`DataSource`]
//! unifies the two worlds so every experiment driver can run on either.

use comic_core::Gap;
use comic_graph::gen::{chung_lu, ChungLuConfig};
use comic_graph::io::{graph_digest, read_binary_for_source, read_edge_list_report, source_digest};
use comic_graph::prob::ProbModel;
use comic_graph::scc::largest_scc;
use comic_graph::stats::{stats_with_merged, GraphStats};
use comic_graph::store;
use comic_graph::{DiGraph, GraphError};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One of the four evaluation datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Douban book-rating follower graph stand-in.
    DoubanBook,
    /// Douban movie-rating follower graph stand-in.
    DoubanMovie,
    /// Flixster friendship SCC stand-in.
    Flixster,
    /// Last.fm friendship graph stand-in.
    LastFm,
}

impl Dataset {
    /// All four, in the paper's Table 1 order.
    pub const ALL: [Dataset; 4] = [
        Dataset::DoubanBook,
        Dataset::DoubanMovie,
        Dataset::Flixster,
        Dataset::LastFm,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::DoubanBook => "Douban-Book",
            Dataset::DoubanMovie => "Douban-Movie",
            Dataset::Flixster => "Flixster",
            Dataset::LastFm => "Last.fm",
        }
    }

    /// Paper-scale `(nodes, edges)` from Table 1.
    pub fn paper_scale(self) -> (usize, usize) {
        match self {
            Dataset::DoubanBook => (23_300, 141_000),
            Dataset::DoubanMovie => (34_900, 274_000),
            Dataset::Flixster => (12_900, 192_000),
            Dataset::LastFm => (61_000, 584_000),
        }
    }

    /// Power-law exponent used for the stand-in (lower = heavier tail;
    /// chosen so max out-degree at full scale brackets Table 1's values:
    /// Douban-Book's 1690 needs a very heavy tail, Flixster's 189 a mild
    /// one).
    fn exponent(self) -> f64 {
        match self {
            Dataset::DoubanBook => 2.05,
            Dataset::DoubanMovie => 2.3,
            Dataset::Flixster => 2.9,
            Dataset::LastFm => 2.2,
        }
    }

    fn gen_seed(self) -> u64 {
        match self {
            Dataset::DoubanBook => 0xD00B,
            Dataset::DoubanMovie => 0xD003,
            Dataset::Flixster => 0xF11C,
            Dataset::LastFm => 0x1A57,
        }
    }

    /// The learned GAPs the paper uses for this dataset in §7.3 (Last.fm has
    /// no inform signal, so the paper uses a synthetic Q).
    pub fn learned_gap(self) -> comic_core::Gap {
        use comic_core::Gap;
        match self {
            // The Unbearable Lightness of Being / Norwegian Wood.
            Dataset::DoubanBook => Gap::new(0.75, 0.85, 0.92, 0.97).unwrap(),
            // Fight Club / Se7en.
            Dataset::DoubanMovie => Gap::new(0.84, 0.89, 0.89, 0.95).unwrap(),
            // Monster Inc / Shrek.
            Dataset::Flixster => Gap::new(0.88, 0.92, 0.92, 0.96).unwrap(),
            // Synthetic (§7.3).
            Dataset::LastFm => Gap::new(0.5, 0.75, 0.5, 0.75).unwrap(),
        }
    }

    /// Instantiate the stand-in at `size_factor` of paper scale with
    /// weighted-cascade probabilities. Flixster additionally extracts the
    /// largest SCC, mirroring the paper's preprocessing.
    pub fn instantiate(self, size_factor: f64) -> DiGraph {
        let (n0, m0) = self.paper_scale();
        let n = ((n0 as f64 * size_factor) as usize).max(200);
        let m = ((m0 as f64 * size_factor) as usize).max(5 * n);
        let mut rng = SmallRng::seed_from_u64(self.gen_seed());
        let topo = chung_lu(
            &ChungLuConfig {
                n,
                target_edges: m,
                exponent: self.exponent(),
            },
            &mut rng,
        )
        .expect("stand-in configuration is valid");
        let topo = if self == Dataset::Flixster {
            let (scc, _) = largest_scc(&topo);
            if scc.num_nodes() >= n / 10 {
                scc
            } else {
                topo // extremely sparse scales: keep the full graph
            }
        } else {
            topo
        };
        ProbModel::WeightedCascade.apply(&topo, &mut rng)
    }
}

/// Power-law graphs for the Figure 7(b) scalability sweep: `sizes` node
/// counts with exponent 2.16 and average degree ≈ 5, as in the paper.
pub fn scalability_series(sizes: &[usize]) -> Vec<(usize, DiGraph)> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = SmallRng::seed_from_u64(0x5CA1E + n as u64);
            let topo = chung_lu(
                &ChungLuConfig {
                    n,
                    target_edges: 5 * n / 2,
                    exponent: 2.16,
                },
                &mut rng,
            )
            .expect("valid scalability config");
            (n, ProbModel::WeightedCascade.apply(&topo, &mut rng))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// On-disk dataset registry.
// ---------------------------------------------------------------------------

/// How edge probabilities are assigned after a text file is parsed.
///
/// SNAP exports carry no probability column (every parsed edge defaults to
/// 1.0), so real ingestion always composes the topology with one of the
/// standard models; `Keep` is for files that already carry learned or
/// previously-assigned probabilities.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbAssignment {
    /// Keep the probabilities found in the file.
    Keep,
    /// Every edge gets the same probability.
    Constant(f64),
    /// `p(u, v) = 1 / indeg(v)` (weighted cascade) — deterministic.
    WeightedCascade,
    /// The classic trivalency model `{0.1, 0.01, 0.001}`, drawn with the
    /// spec's `prob_seed` so assignment is reproducible.
    Trivalency,
    /// Uniform draw from `[lo, hi]`, seeded like `Trivalency`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl ProbAssignment {
    /// Apply to `g`; stochastic models draw from a `SmallRng` seeded with
    /// `seed`, so the result is deterministic per spec.
    pub fn apply(&self, g: &DiGraph, seed: u64) -> DiGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let model = match self {
            ProbAssignment::Keep => return g.clone(),
            ProbAssignment::Constant(p) => ProbModel::Constant(*p),
            ProbAssignment::WeightedCascade => ProbModel::WeightedCascade,
            ProbAssignment::Trivalency => ProbModel::trivalency(),
            ProbAssignment::Uniform { lo, hi } => ProbModel::Uniform { lo: *lo, hi: *hi },
        };
        model.apply(g, &mut rng)
    }

    /// Short label for listings (`keep`, `wc`, `triv`, `uniform[a,b]`, `p=x`).
    pub fn label(&self) -> String {
        match self {
            ProbAssignment::Keep => "keep".into(),
            ProbAssignment::Constant(p) => format!("p={p}"),
            ProbAssignment::WeightedCascade => "wc".into(),
            ProbAssignment::Trivalency => "triv".into(),
            ProbAssignment::Uniform { lo, hi } => format!("uniform[{lo},{hi}]"),
        }
    }

    /// Parse a label produced by [`ProbAssignment::label`] (the `--dataset
    /// path:model` suffix syntax): `keep | wc | triv | uniform |
    /// uniform[lo,hi] | p=<x>` — every `label()` output round-trips.
    pub fn parse(s: &str) -> Option<ProbAssignment> {
        match s {
            "keep" => return Some(ProbAssignment::Keep),
            "wc" | "weighted-cascade" => return Some(ProbAssignment::WeightedCascade),
            "triv" | "trivalency" => return Some(ProbAssignment::Trivalency),
            "uniform" => return Some(ProbAssignment::Uniform { lo: 0.0, hi: 0.1 }),
            _ => {}
        }
        if let Some(inner) = s.strip_prefix("uniform[").and_then(|r| r.strip_suffix(']')) {
            let (lo, hi) = inner.split_once(',')?;
            let lo: f64 = lo.trim().parse().ok()?;
            let hi: f64 = hi.trim().parse().ok()?;
            return (0.0 <= lo && lo <= hi && hi <= 1.0)
                .then_some(ProbAssignment::Uniform { lo, hi });
        }
        s.strip_prefix("p=")
            .and_then(|v| v.parse().ok())
            .filter(|p| (0.0..=1.0).contains(p))
            .map(ProbAssignment::Constant)
    }

    /// Filename-safe form of [`ProbAssignment::label`], used to key the
    /// binary cache so that switching models on the same source file can
    /// never serve a stale graph.
    pub fn file_tag(&self) -> String {
        self.label()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect::<String>()
            .trim_matches('-')
            .to_string()
    }
}

/// One registry entry: where a dataset lives, what it should contain, and
/// how to turn its topology into a Com-IC-ready probabilistic graph.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Registry name (`--dataset <name>`).
    pub name: &'static str,
    /// Source path, relative to [`data_root`] unless absolute.
    pub path: &'static str,
    /// Manifest: expected node count after ingestion (`None` = unchecked,
    /// for real downloads whose exact snapshot varies).
    pub expected_nodes: Option<usize>,
    /// Manifest: expected edge count after ingestion.
    pub expected_edges: Option<usize>,
    /// Probability model applied after parsing.
    pub prob: ProbAssignment,
    /// Seed for stochastic probability models.
    pub prob_seed: u64,
    /// GAP preset `(q_A|0, q_A|B, q_B|0, q_B|A)` for the item pair run on
    /// this dataset (the paper's learned values where available).
    pub gap: (f64, f64, f64, f64),
    /// Whether the file ships with the repository (fixtures) — `--validate`
    /// fails when a required file is missing, and merely notes optional
    /// ones (real downloads).
    pub required: bool,
    /// One-line provenance note for listings.
    pub note: &'static str,
}

impl DatasetSpec {
    /// The GAP preset as a [`Gap`].
    pub fn gap(&self) -> Gap {
        Gap::new(self.gap.0, self.gap.1, self.gap.2, self.gap.3).expect("registry GAPs are valid")
    }

    /// Absolute source path. Committed fixtures (under `tests/`) resolve
    /// against the workspace root; download slots against [`data_root`].
    pub fn source_path(&self) -> PathBuf {
        let p = Path::new(self.path);
        if p.is_absolute() {
            p.to_path_buf()
        } else if self.path.starts_with("tests/") {
            workspace_root().join(p)
        } else {
            data_root().join(p)
        }
    }

    /// Where this entry's binary cache lives.
    pub fn cache_path(&self) -> PathBuf {
        cache_path_for(&self.source_path(), &self.prob.file_tag(), self.prob_seed)
    }

    /// Whether the manifest actually pins both sizes. Entries with `None`
    /// expectations (real downloads whose snapshot varies) pass
    /// [`validate_manifest`] vacuously, so `--validate` reports them as
    /// `unverified` rather than `ok` — a pass that checked nothing must
    /// not read like a pass that checked everything.
    pub fn manifest_complete(&self) -> bool {
        self.expected_nodes.is_some() && self.expected_edges.is_some()
    }
}

/// Expected sizes of the committed fixtures (see `make_fixtures`): the
/// manifest the ingestion path is validated against in CI.
pub const FIXTURE_SMALL_NODES: usize = 1_200;
/// Edge count of `fixture-small` (see [`FIXTURE_SMALL_NODES`]).
pub const FIXTURE_SMALL_EDGES: usize = 5_000;
/// Node count of `fixture-medium`.
pub const FIXTURE_MEDIUM_NODES: usize = 9_000;
/// Edge count of `fixture-medium`.
pub const FIXTURE_MEDIUM_EDGES: usize = 50_000;

/// The registry: committed fixtures first, then slots for the paper's real
/// datasets (downloaded separately; see README "Datasets").
pub static REGISTRY: &[DatasetSpec] = &[
    DatasetSpec {
        name: "fixture-small",
        path: "tests/fixtures/fixture-small.txt",
        expected_nodes: Some(FIXTURE_SMALL_NODES),
        expected_edges: Some(FIXTURE_SMALL_EDGES),
        prob: ProbAssignment::WeightedCascade,
        prob_seed: 0,
        gap: (0.75, 0.85, 0.92, 0.97), // Douban-Book's learned pair
        required: true,
        note: "committed Chung-Lu fixture (~5k edges), SNAP text format",
    },
    DatasetSpec {
        name: "fixture-medium",
        path: "tests/fixtures/fixture-medium.txt",
        expected_nodes: Some(FIXTURE_MEDIUM_NODES),
        expected_edges: Some(FIXTURE_MEDIUM_EDGES),
        prob: ProbAssignment::Trivalency,
        prob_seed: 0xF1C6,
        gap: (0.88, 0.92, 0.92, 0.96), // Flixster's learned pair
        required: true,
        note: "committed Chung-Lu fixture (~50k edges), SNAP text format",
    },
    DatasetSpec {
        name: "flixster",
        path: "data/flixster.txt",
        expected_nodes: None,
        expected_edges: None,
        prob: ProbAssignment::WeightedCascade,
        prob_seed: 0xF11C,
        gap: (0.88, 0.92, 0.92, 0.96),
        required: false,
        note: "real Flixster friendship graph (download; bidirect + SCC upstream)",
    },
    DatasetSpec {
        name: "douban-book",
        path: "data/douban-book.txt",
        expected_nodes: None,
        expected_edges: None,
        prob: ProbAssignment::WeightedCascade,
        prob_seed: 0xD00B,
        gap: (0.75, 0.85, 0.92, 0.97),
        required: false,
        note: "real Douban-Book follower graph (download)",
    },
    DatasetSpec {
        name: "douban-movie",
        path: "data/douban-movie.txt",
        expected_nodes: None,
        expected_edges: None,
        prob: ProbAssignment::WeightedCascade,
        prob_seed: 0xD003,
        gap: (0.84, 0.89, 0.89, 0.95),
        required: false,
        note: "real Douban-Movie follower graph (download)",
    },
    DatasetSpec {
        name: "lastfm",
        path: "data/lastfm.txt",
        expected_nodes: None,
        expected_edges: None,
        prob: ProbAssignment::WeightedCascade,
        prob_seed: 0x1A57,
        gap: (0.5, 0.75, 0.5, 0.75),
        required: false,
        note: "real Last.fm friendship graph (download; synthetic GAPs, §7.3)",
    },
];

/// Look a registry entry up by name.
pub fn find_spec(name: &str) -> Option<&'static DatasetSpec> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// The workspace root — where the committed fixture corpus lives,
/// independent of any environment override.
pub fn workspace_root() -> PathBuf {
    // crates/bench/ -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Root against which *downloaded* registry paths (`data/...`) resolve:
/// `$COMIC_DATA_DIR` when set, the workspace root otherwise. Committed
/// fixtures always resolve against [`workspace_root`], so pointing
/// `COMIC_DATA_DIR` at a download directory cannot orphan them.
pub fn data_root() -> PathBuf {
    if let Ok(dir) = std::env::var("COMIC_DATA_DIR") {
        return PathBuf::from(dir);
    }
    workspace_root()
}

/// Cache file that sits next to a dataset source, keyed by the probability
/// model (its [`ProbAssignment::file_tag`]), its seed, and the source's
/// byte length — a different model, seed, or re-downloaded file of another
/// size resolves to a different cache file, so one can never be mistaken
/// for the other. Same-length replacements are caught by the **source
/// content digest** embedded in the `COMICGRB` v3 header, which the loader
/// verifies on every cache hit — no mtime heuristics, so even a `cp -p`
/// replacement (same length, deliberately preserved older timestamp) is
/// detected and the cache rebuilt.
pub fn cache_path_for(source: &Path, prob_tag: &str, prob_seed: u64) -> PathBuf {
    let len = std::fs::metadata(source).map(|m| m.len()).unwrap_or(0);
    let mut os = source.as_os_str().to_os_string();
    os.push(format!(".{prob_tag}-{prob_seed:x}-{len:x}.cache"));
    PathBuf::from(os)
}

/// Whether and how the binary cache participates in a load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Read the cache when present and valid; (re)write it otherwise.
    Use,
    /// Ignore any existing cache but write a fresh one.
    Refresh,
    /// Never read nor write the cache.
    Off,
}

/// A dataset pulled through the full ingestion path, ready for a driver.
#[derive(Clone, Debug)]
pub struct LoadedDataset {
    /// Registry name, or the file stem for ad-hoc paths.
    pub name: String,
    /// Resolved source file.
    pub source: PathBuf,
    /// Cache file location (whether or not it exists).
    pub cache: PathBuf,
    /// The ready probabilistic graph (shared — experiment drivers may hold
    /// many handles to one multi-million-edge load).
    pub graph: Arc<DiGraph>,
    /// GAP preset for the item pair on this dataset.
    pub gap: Gap,
    /// Content digest of `graph` (see `comic_graph::io::graph_digest`).
    pub digest: u64,
    /// Whether this load was served from the binary cache.
    pub from_cache: bool,
    /// Duplicate edges merged during text parsing; `None` on cache hits,
    /// where the text was never re-read (the cache stores the merged graph
    /// only).
    pub duplicates_merged: Option<usize>,
}

impl LoadedDataset {
    /// Graph statistics with the ingestion dedup count filled in (0 when
    /// unknown, i.e. on cache hits).
    pub fn stats(&self) -> GraphStats {
        stats_with_merged(&self.graph, self.duplicates_merged.unwrap_or(0))
    }
}

/// Everything that can go wrong between `--dataset` and a ready graph.
#[derive(Debug)]
pub enum DatasetError {
    /// The argument named neither a registry entry nor an existing file.
    Unknown(String),
    /// The spec's source file does not exist.
    Missing(PathBuf),
    /// Parsing, probability validation, or cache I/O failed.
    Graph(GraphError),
    /// The ingested graph contradicts the manifest.
    Manifest {
        /// Dataset name.
        name: String,
        /// Which quantity mismatched (`nodes` / `edges`).
        what: &'static str,
        /// Manifest expectation.
        expected: usize,
        /// What ingestion produced.
        found: usize,
    },
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Unknown(arg) => {
                let names: Vec<&str> = REGISTRY.iter().map(|s| s.name).collect();
                write!(
                    f,
                    "'{arg}' is neither a registered dataset ({}) nor an existing file",
                    names.join(", ")
                )
            }
            DatasetError::Missing(p) => write!(
                f,
                "dataset file {} does not exist (set COMIC_DATA_DIR or download it; \
                 see README 'Datasets')",
                p.display()
            ),
            DatasetError::Graph(e) => write!(f, "dataset ingestion failed: {e}"),
            DatasetError::Manifest {
                name,
                what,
                expected,
                found,
            } => write!(
                f,
                "dataset '{name}' failed manifest validation: expected {expected} {what}, \
                 ingested {found}"
            ),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DatasetError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for DatasetError {
    fn from(e: GraphError) -> Self {
        DatasetError::Graph(e)
    }
}

/// Resolve a `--dataset` argument: a registry name, or a path to an
/// edge-list/SNAP text file, optionally suffixed `:keep | :wc | :triv |
/// :uniform | :p=<x>` to pick the probability model (ad-hoc paths default
/// to weighted cascade when the file carries no probability column, and to
/// `keep` when it does).
pub fn load(arg: &str) -> Result<LoadedDataset, DatasetError> {
    load_with(arg, CacheMode::Use)
}

/// [`load`] with explicit cache behaviour.
pub fn load_with(arg: &str, cache: CacheMode) -> Result<LoadedDataset, DatasetError> {
    if let Some(spec) = find_spec(arg) {
        return load_spec(spec, cache);
    }
    // `path:model` suffix?
    let (path_str, forced_prob) = match arg.rsplit_once(':') {
        Some((head, tail)) if ProbAssignment::parse(tail).is_some() && !head.is_empty() => {
            (head, ProbAssignment::parse(tail))
        }
        _ => (arg, None),
    };
    let path = Path::new(path_str);
    if !path.exists() {
        return Err(if path_str == arg {
            DatasetError::Unknown(arg.to_string())
        } else {
            DatasetError::Missing(path.to_path_buf())
        });
    }
    load_path(path, forced_prob, cache)
}

/// Load a registry entry through the cache-then-parse path.
pub fn load_spec(spec: &DatasetSpec, cache: CacheMode) -> Result<LoadedDataset, DatasetError> {
    let source = spec.source_path();
    if !source.exists() {
        return Err(DatasetError::Missing(source));
    }
    let loaded = load_file(
        spec.name,
        &source,
        ProbChoice::Fixed(spec.prob),
        spec.prob_seed,
        spec.gap(),
        cache,
    )?;
    validate_manifest(spec, &loaded)?;
    Ok(loaded)
}

/// Manifest check: the ingested graph must match the spec's expected sizes.
pub fn validate_manifest(spec: &DatasetSpec, loaded: &LoadedDataset) -> Result<(), DatasetError> {
    let checks = [
        ("nodes", spec.expected_nodes, loaded.graph.num_nodes()),
        ("edges", spec.expected_edges, loaded.graph.num_edges()),
    ];
    for (what, expected, found) in checks {
        if let Some(expected) = expected {
            if expected != found {
                return Err(DatasetError::Manifest {
                    name: spec.name.to_string(),
                    what,
                    expected,
                    found,
                });
            }
        }
    }
    Ok(())
}

/// How the probability model for a load is determined: pinned by a spec or
/// a `:model` suffix, or sniffed from the parsed file (ad-hoc paths with no
/// suffix). `Auto` gets its own cache-file tag so the decision is stable
/// across cache hits without re-reading the text.
enum ProbChoice {
    Fixed(ProbAssignment),
    Auto,
}

impl ProbChoice {
    fn file_tag(&self) -> String {
        match self {
            ProbChoice::Fixed(p) => p.file_tag(),
            ProbChoice::Auto => "auto".to_string(),
        }
    }

    /// Resolve against a parsed file: keep an existing probability column,
    /// otherwise fall back to weighted cascade (an all-1.0 graph is never
    /// what a SNAP pair file means).
    fn resolve(&self, parsed: &DiGraph) -> ProbAssignment {
        match self {
            ProbChoice::Fixed(p) => *p,
            ProbChoice::Auto => {
                if parsed.edges().any(|(_, e)| e.p != 1.0) {
                    ProbAssignment::Keep
                } else {
                    ProbAssignment::WeightedCascade
                }
            }
        }
    }
}

/// Caches are keyed by source length, so every re-download of a different
/// size would leave the previous `<file>.<tag>-<seed>-<len>.cache` behind;
/// sweep same-model siblings of the one just written (best-effort — other
/// probability models' caches on the same source stay untouched).
fn remove_superseded_caches(source: &Path, prob_tag: &str, prob_seed: u64, current: &Path) {
    let Some(dir) = source.parent() else { return };
    let Some(fname) = source.file_name().and_then(|f| f.to_str()) else {
        return;
    };
    let prefix = format!("{fname}.{prob_tag}-{prob_seed:x}-");
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(&prefix) && name.ends_with(".cache") && entry.path() != current {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn load_path(
    path: &Path,
    forced_prob: Option<ProbAssignment>,
    cache: CacheMode,
) -> Result<LoadedDataset, DatasetError> {
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    // Ad-hoc GAP preset: a mutually complementary mid-range pair.
    let gap = Gap::new(0.5, 0.75, 0.5, 0.75).expect("default GAP is valid");
    let choice = forced_prob.map_or(ProbChoice::Auto, ProbChoice::Fixed);
    load_file(&name, path, choice, 0xADC0C, gap, cache)
}

/// Best-effort v4 cache write: the cache is a pure optimization, so a
/// failed write (read-only directory, full disk) must not fail the load
/// itself. Atomic-enough: write a sibling temp file, then rename over.
/// Returns whether the cache landed.
fn write_cache_v4(graph: &DiGraph, src_digest: u64, cache_file: &Path) -> bool {
    let tmp = cache_file.with_extension("cache.tmp");
    let write = store::write_store_file(graph, src_digest, &tmp)
        .and_then(|()| std::fs::rename(&tmp, cache_file).map_err(GraphError::Io));
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        eprintln!(
            "warning: could not write dataset cache {}: {e}",
            cache_file.display()
        );
        false
    } else {
        true
    }
}

fn load_file(
    name: &str,
    source: &Path,
    choice: ProbChoice,
    prob_seed: u64,
    gap: Gap,
    cache: CacheMode,
) -> Result<LoadedDataset, DatasetError> {
    let cache_file = cache_path_for(source, &choice.file_tag(), prob_seed);
    // Hash the source text up front: the digest keys both the cache-hit
    // staleness check (v3 headers embed it) and the provenance recorded on
    // a rebuild. Hashing is a single sequential read — far cheaper than
    // parsing, and the price of making staleness a *content* property
    // instead of an mtime guess.
    let src_bytes = std::fs::read(source).map_err(GraphError::Io)?;
    let src_digest = source_digest(&src_bytes);
    if cache == CacheMode::Use {
        // A stale or corrupt cache (bad magic, old version, digest
        // mismatch, short file, or a source content change — including the
        // same-length `cp -p` replacement the old mtime check missed) is
        // not fatal — fall through and rebuild it from the source text.
        // The zero-copy v4 store is tried first; a v3 cache still loads
        // (typed `UnsupportedVersion` from the v4 reader routes it to the
        // legacy path) and is transparently rewritten as v4 so the next
        // load maps it.
        if let Ok(graph) = store::read_store_file(&cache_file, Some(src_digest)) {
            let digest = graph_digest(&graph);
            return Ok(LoadedDataset {
                name: name.to_string(),
                source: source.to_path_buf(),
                cache: cache_file,
                graph: Arc::new(graph),
                gap,
                digest,
                from_cache: true,
                duplicates_merged: None,
            });
        }
        if let Ok(graph) = File::open(&cache_file)
            .map_err(GraphError::Io)
            .and_then(|f| read_binary_for_source(f, src_digest))
        {
            write_cache_v4(&graph, src_digest, &cache_file);
            let digest = graph_digest(&graph);
            return Ok(LoadedDataset {
                name: name.to_string(),
                source: source.to_path_buf(),
                cache: cache_file,
                graph: Arc::new(graph),
                gap,
                digest,
                from_cache: true,
                duplicates_merged: None,
            });
        }
    }

    let rep = read_edge_list_report(&src_bytes[..])?;
    let graph = choice.resolve(&rep.graph).apply(&rep.graph, prob_seed);
    let digest = graph_digest(&graph);
    if cache != CacheMode::Off && write_cache_v4(&graph, src_digest, &cache_file) {
        remove_superseded_caches(source, &choice.file_tag(), prob_seed, &cache_file);
    }
    Ok(LoadedDataset {
        name: name.to_string(),
        source: source.to_path_buf(),
        cache: cache_file,
        graph: Arc::new(graph),
        gap,
        digest,
        from_cache: false,
        duplicates_merged: Some(rep.duplicate_edges_merged),
    })
}

// ---------------------------------------------------------------------------
// DataSource: synthetic stand-ins and loaded files behind one face.
// ---------------------------------------------------------------------------

/// What an experiment driver runs on: one of the four synthetic stand-ins,
/// or a dataset pulled through the on-disk ingestion path.
#[derive(Clone)]
pub enum DataSource {
    /// A Table 1 stand-in, instantiated per `size_factor`.
    Synthetic(Dataset),
    /// A loaded on-disk dataset (shared, loaded once).
    Loaded(Arc<LoadedDataset>),
}

impl DataSource {
    /// The four synthetic stand-ins, in Table 1 order — the default when no
    /// `--dataset` is given.
    pub fn default_sources() -> Vec<DataSource> {
        Dataset::ALL
            .into_iter()
            .map(DataSource::Synthetic)
            .collect()
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            DataSource::Synthetic(d) => d.name().to_string(),
            DataSource::Loaded(l) => l.name.clone(),
        }
    }

    /// The ready graph. Synthetic stand-ins instantiate at `size_factor`;
    /// loaded datasets are what they are on disk and ignore it (and hand
    /// out another `Arc` handle rather than copying the CSR).
    pub fn graph(&self, size_factor: f64) -> Arc<DiGraph> {
        match self {
            DataSource::Synthetic(d) => Arc::new(d.instantiate(size_factor)),
            DataSource::Loaded(l) => Arc::clone(&l.graph),
        }
    }

    /// The GAP preset for the item pair on this dataset.
    pub fn gap(&self) -> Gap {
        match self {
            DataSource::Synthetic(d) => d.learned_gap(),
            DataSource::Loaded(l) => l.gap,
        }
    }

    /// The underlying stand-in, when synthetic.
    pub fn synthetic(&self) -> Option<Dataset> {
        match self {
            DataSource::Synthetic(d) => Some(*d),
            DataSource::Loaded(_) => None,
        }
    }

    /// The underlying loaded dataset, when on-disk.
    pub fn loaded(&self) -> Option<&LoadedDataset> {
        match self {
            DataSource::Synthetic(_) => None,
            DataSource::Loaded(l) => Some(l),
        }
    }
}

/// Source for the criterion micro-benchmarks, which have no CLI of their
/// own: `$COMIC_BENCH_DATASET` (a registry name or `path[:prob-model]`,
/// pulled through the full ingestion path with the binary cache) when set,
/// the synthetic stand-in `default` otherwise.
pub fn bench_source(default: Dataset) -> DataSource {
    match std::env::var("COMIC_BENCH_DATASET") {
        Ok(arg) => DataSource::Loaded(Arc::new(
            load(&arg).unwrap_or_else(|e| panic!("COMIC_BENCH_DATASET: {e}")),
        )),
        Err(_) => DataSource::Synthetic(default),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stand_ins_instantiate_at_small_scale() {
        for d in Dataset::ALL {
            let g = d.instantiate(0.05);
            assert!(g.num_nodes() >= 200, "{}", d.name());
            assert!(g.num_edges() > g.num_nodes(), "{}", d.name());
            let s = comic_graph::stats::stats(&g);
            // Tail heaviness shrinks with scale; Flixster is deliberately
            // the mildest (paper max/avg ≈ 13 vs Douban-Book's ≈ 260).
            assert!(
                s.max_out_degree as f64 > 3.0 * s.avg_out_degree,
                "{} should be heavy-tailed: {s}",
                d.name()
            );
        }
    }

    #[test]
    fn deterministic_per_dataset() {
        let a = Dataset::Flixster.instantiate(0.05);
        let b = Dataset::Flixster.instantiate(0.05);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn learned_gaps_are_mutually_complementary() {
        for d in Dataset::ALL {
            assert_eq!(
                d.learned_gap().regime(),
                comic_core::Regime::MutualComplement,
                "{}",
                d.name()
            );
        }
    }

    #[test]
    fn scalability_series_scales() {
        let series = scalability_series(&[500, 1000]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1.num_nodes(), 500);
        assert_eq!(series[1].1.num_nodes(), 1000);
    }

    #[test]
    fn registry_names_resolve_and_unknowns_list_the_registry() {
        assert!(find_spec("fixture-small").is_some());
        assert!(find_spec("nope").is_none());
        let err = load("nope").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("fixture-small"), "{msg}");
        assert!(msg.contains("douban-book"), "{msg}");
    }

    #[test]
    fn prob_assignment_parse_matches_label() {
        for p in [
            ProbAssignment::Keep,
            ProbAssignment::WeightedCascade,
            ProbAssignment::Trivalency,
            ProbAssignment::Constant(0.05),
            ProbAssignment::Uniform { lo: 0.1, hi: 0.3 },
        ] {
            assert_eq!(ProbAssignment::parse(&p.label()), Some(p));
        }
        assert!(ProbAssignment::parse("p=1.5").is_none());
        assert!(ProbAssignment::parse("garbage").is_none());
    }

    #[test]
    fn cache_sits_next_to_the_source_keyed_by_model() {
        let c = cache_path_for(Path::new("/tmp/x/no-such-graph.txt"), "wc", 0);
        assert_eq!(c, PathBuf::from("/tmp/x/no-such-graph.txt.wc-0-0.cache"));
        // Different models (or seeds) on one source use different caches.
        let p1 = ProbAssignment::Constant(0.5).file_tag();
        let p2 = ProbAssignment::WeightedCascade.file_tag();
        assert_ne!(
            cache_path_for(Path::new("g.txt"), &p1, 1),
            cache_path_for(Path::new("g.txt"), &p2, 1)
        );
        assert_eq!(
            ProbAssignment::Uniform { lo: 0.0, hi: 0.1 }.file_tag(),
            "uniform-0-0-1"
        );
    }

    fn temp_dataset(name: &str, contents: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("comic-datasets-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn ad_hoc_path_ingests_dedups_and_caches() {
        // Duplicate (0,1) line: last-wins, surfaced in the report; no
        // probability column → weighted cascade is auto-applied.
        let path = temp_dataset(
            "adhoc",
            "# Nodes: 5 Edges: 4\n0\t1\n1\t2\n0\t1\n2\t1\n3\t4\n",
        );
        let cold = load_with(path.to_str().unwrap(), CacheMode::Use).unwrap();
        assert!(!cold.from_cache);
        assert_eq!(cold.duplicates_merged, Some(1));
        assert_eq!(cold.graph.num_edges(), 4);
        assert_eq!(cold.stats().duplicate_edges_merged, 1);
        // Weighted cascade replaced the default 1.0 column.
        assert!(cold.graph.edges().any(|(_, e)| e.p < 1.0));
        let cache_bytes = std::fs::read(&cold.cache).unwrap();

        // Second load: served from the digest-validated cache, same graph.
        let warm = load_with(path.to_str().unwrap(), CacheMode::Use).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.digest, cold.digest);
        assert_eq!(warm.graph.num_edges(), cold.graph.num_edges());
        assert_eq!(std::fs::read(&warm.cache).unwrap(), cache_bytes);

        // A corrupted cache is rebuilt transparently, not trusted.
        let mut bad = cache_bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        std::fs::write(&cold.cache, &bad).unwrap();
        let healed = load_with(path.to_str().unwrap(), CacheMode::Use).unwrap();
        assert!(!healed.from_cache);
        assert_eq!(healed.digest, cold.digest);
        assert_eq!(std::fs::read(&healed.cache).unwrap(), cache_bytes);
    }

    /// The ROADMAP's one undetected staleness case, closed by the v3
    /// source digest: replace the source with a same-length file whose
    /// mtime is deliberately kept older than the cache (`cp -p`). The old
    /// mtime heuristic served the stale cache; the content hash rebuilds.
    #[test]
    fn same_length_older_mtime_replacement_is_detected() {
        let v1 = "0 1 0.25\n1 2 0.25\n";
        let v2 = "0 1 0.75\n1 2 0.75\n"; // same byte length, new content
        assert_eq!(v1.len(), v2.len());
        let path = temp_dataset("cp-p", v1);
        let arg = path.to_str().unwrap();

        let cold = load_with(arg, CacheMode::Use).unwrap();
        assert!(!cold.from_cache);
        let warm = load_with(arg, CacheMode::Use).unwrap();
        assert!(warm.from_cache, "sanity: unchanged source hits the cache");

        // Replace the content but push the source mtime well behind the
        // cache's, simulating `cp -p old-backup graph.txt`.
        std::fs::write(&path, v2).unwrap();
        let older = std::time::SystemTime::now() - std::time::Duration::from_secs(3_600);
        std::fs::File::options()
            .write(true)
            .open(&path)
            .unwrap()
            .set_times(std::fs::FileTimes::new().set_modified(older))
            .unwrap();

        let healed = load_with(arg, CacheMode::Use).unwrap();
        assert!(
            !healed.from_cache,
            "stale cache with older-mtime source must be rebuilt"
        );
        assert_ne!(healed.digest, cold.digest, "new content, new graph");
        // And the rebuilt cache serves the new content from then on.
        let warm2 = load_with(arg, CacheMode::Use).unwrap();
        assert!(warm2.from_cache);
        assert_eq!(warm2.digest, healed.digest);
    }

    #[test]
    fn legacy_v3_cache_upgrades_to_v4_in_place() {
        let path = temp_dataset("v3-upgrade", "0 1 0.5\n1 2 0.5\n2 0 0.5\n");
        let arg = path.to_str().unwrap();
        let cold = load_with(arg, CacheMode::Use).unwrap();
        assert!(!cold.from_cache);

        // Swap the fresh v4 cache for a legacy v3 file of the same graph.
        let src_digest = source_digest(&std::fs::read(&path).unwrap());
        let f = File::create(&cold.cache).unwrap();
        comic_graph::io::write_binary_with_source(&cold.graph, src_digest, f).unwrap();
        let v3_bytes = std::fs::read(&cold.cache).unwrap();
        assert_eq!(u32::from_le_bytes(v3_bytes[8..12].try_into().unwrap()), 3);

        // The v3 cache still counts as a hit, and the load transparently
        // rewrites it as v4 so the next one takes the zero-copy path.
        let warm = load_with(arg, CacheMode::Use).unwrap();
        assert!(warm.from_cache, "v3 cache must still serve the load");
        assert_eq!(warm.digest, cold.digest);
        let upgraded = std::fs::read(&cold.cache).unwrap();
        assert_eq!(&upgraded[0..8], store::STORE_MAGIC);
        assert_eq!(
            u32::from_le_bytes(upgraded[8..12].try_into().unwrap()),
            store::STORE_FORMAT_VERSION
        );
        let warm2 = load_with(arg, CacheMode::Use).unwrap();
        assert!(warm2.from_cache);
        assert_eq!(warm2.digest, cold.digest);
    }

    /// The acceptance gate for the zero-copy store: on BOTH committed
    /// fixtures, the v3 deserializing load and the v4 zero-copy load
    /// produce digest-identical graphs, in both store modes (mmap and
    /// safe bulk-read — the `COMIC_MMAP=on|off` axis, pinned explicitly
    /// here since the env override is process-wide).
    #[test]
    fn v3_and_v4_load_paths_agree_on_committed_fixtures() {
        use comic_graph::store::StoreMode;
        for name in ["fixture-small", "fixture-medium"] {
            let loaded = load_with(name, CacheMode::Off).unwrap();
            let src = loaded.digest;
            let dir = std::env::temp_dir()
                .join(format!("comic-datasets-test-{}-v3v4", std::process::id()));
            std::fs::create_dir_all(&dir).unwrap();

            let v3_path = dir.join(format!("{name}.v3.bin"));
            let f = File::create(&v3_path).unwrap();
            comic_graph::io::write_binary_with_source(&loaded.graph, src, f).unwrap();
            let from_v3 = read_binary_for_source(File::open(&v3_path).unwrap(), src).unwrap();
            assert_eq!(
                graph_digest(&loaded.graph),
                graph_digest(&from_v3),
                "{name}"
            );

            let v4_path = dir.join(format!("{name}.v4.grb"));
            store::write_store_file(&loaded.graph, src, &v4_path).unwrap();
            for mode in [StoreMode::Mmap, StoreMode::Read] {
                let from_v4 = store::read_store_file_with(&v4_path, Some(src), mode).unwrap();
                assert_eq!(
                    graph_digest(&from_v3),
                    graph_digest(&from_v4),
                    "{name} mode {}",
                    mode.name()
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn manifest_complete_requires_both_expectations() {
        let full = &REGISTRY[0];
        assert!(full.manifest_complete(), "fixtures pin both sizes");
        let mut partial = full.clone();
        partial.expected_edges = None;
        assert!(!partial.manifest_complete());
        partial.expected_nodes = None;
        assert!(!partial.manifest_complete());
        // Every non-required registry entry (real downloads) is unverified.
        for spec in REGISTRY.iter().filter(|s| !s.required) {
            assert!(
                !spec.manifest_complete(),
                "{} should be unverified",
                spec.name
            );
        }
    }

    #[test]
    fn prob_suffix_forces_the_model() {
        let path = temp_dataset("suffix", "0 1 0.25\n1 2 0.25\n");
        // Default sniffing keeps the probability column…
        let kept = load_with(path.to_str().unwrap(), CacheMode::Off).unwrap();
        assert!(kept.graph.edges().all(|(_, e)| e.p == 0.25));
        // …while an explicit suffix overrides it.
        let arg = format!("{}:p=0.5", path.display());
        let forced = load_with(&arg, CacheMode::Off).unwrap();
        assert!(forced.graph.edges().all(|(_, e)| e.p == 0.5));
    }

    #[test]
    fn manifest_mismatch_is_a_typed_error() {
        let path = temp_dataset("manifest", "0 1\n1 2\n");
        let leaked: &'static str = Box::leak(path.display().to_string().into_boxed_str());
        let spec = DatasetSpec {
            name: "manifest-test",
            path: leaked,
            expected_nodes: Some(3),
            expected_edges: Some(99),
            prob: ProbAssignment::Constant(0.5),
            prob_seed: 0,
            gap: (0.5, 0.75, 0.5, 0.75),
            required: true,
            note: "",
        };
        match load_spec(&spec, CacheMode::Off) {
            Err(DatasetError::Manifest {
                what: "edges",
                expected: 99,
                found: 2,
                ..
            }) => {}
            other => panic!("expected manifest error, got {other:?}"),
        }
    }

    #[test]
    fn data_source_unifies_both_worlds() {
        let synth = DataSource::Synthetic(Dataset::Flixster);
        assert_eq!(synth.name(), "Flixster");
        assert!(synth.synthetic().is_some());
        let path = temp_dataset("source", "0 1 0.5\n1 0 0.5\n");
        let loaded = DataSource::Loaded(Arc::new(
            load_with(path.to_str().unwrap(), CacheMode::Off).unwrap(),
        ));
        assert_eq!(loaded.name(), "graph");
        assert!(loaded.synthetic().is_none());
        // size_factor is a no-op for loaded datasets.
        assert_eq!(
            loaded.graph(0.01).num_nodes(),
            loaded.graph(1.0).num_nodes()
        );
        assert_eq!(loaded.gap().regime(), comic_core::Regime::MutualComplement);
    }
}
