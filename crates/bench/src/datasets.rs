//! Synthetic stand-ins for the paper's four datasets (Table 1).
//!
//! | name         | paper |V| | paper |E| | avg out | max out | provenance            |
//! |--------------|-----------|-----------|---------|---------|------------------------|
//! | Douban-Book  | 23.3K     | 141K      | 6.5     | 1690    | follower links, directed |
//! | Douban-Movie | 34.9K     | 274K      | 7.9     | 545     | follower links, directed |
//! | Flixster     | 12.9K     | 192K      | 14.8    | 189     | friendships, SCC, bidirected |
//! | Last.fm      | 61K       | 584K      | 9.6     | 1073    | friendships, bidirected |
//!
//! The stand-ins are Chung–Lu power-law graphs whose exponents are tuned so
//! the out-degree skew brackets the reported maxima at full scale, with
//! weighted-cascade edge probabilities (the standard proxy for the paper's
//! learned probabilities — DESIGN.md §2). Everything is deterministic given
//! the scale factor.

use comic_graph::gen::{chung_lu, ChungLuConfig};
use comic_graph::prob::ProbModel;
use comic_graph::scc::largest_scc;
use comic_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One of the four evaluation datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// Douban book-rating follower graph stand-in.
    DoubanBook,
    /// Douban movie-rating follower graph stand-in.
    DoubanMovie,
    /// Flixster friendship SCC stand-in.
    Flixster,
    /// Last.fm friendship graph stand-in.
    LastFm,
}

impl Dataset {
    /// All four, in the paper's Table 1 order.
    pub const ALL: [Dataset; 4] = [
        Dataset::DoubanBook,
        Dataset::DoubanMovie,
        Dataset::Flixster,
        Dataset::LastFm,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::DoubanBook => "Douban-Book",
            Dataset::DoubanMovie => "Douban-Movie",
            Dataset::Flixster => "Flixster",
            Dataset::LastFm => "Last.fm",
        }
    }

    /// Paper-scale `(nodes, edges)` from Table 1.
    pub fn paper_scale(self) -> (usize, usize) {
        match self {
            Dataset::DoubanBook => (23_300, 141_000),
            Dataset::DoubanMovie => (34_900, 274_000),
            Dataset::Flixster => (12_900, 192_000),
            Dataset::LastFm => (61_000, 584_000),
        }
    }

    /// Power-law exponent used for the stand-in (lower = heavier tail;
    /// chosen so max out-degree at full scale brackets Table 1's values:
    /// Douban-Book's 1690 needs a very heavy tail, Flixster's 189 a mild
    /// one).
    fn exponent(self) -> f64 {
        match self {
            Dataset::DoubanBook => 2.05,
            Dataset::DoubanMovie => 2.3,
            Dataset::Flixster => 2.9,
            Dataset::LastFm => 2.2,
        }
    }

    fn gen_seed(self) -> u64 {
        match self {
            Dataset::DoubanBook => 0xD00B,
            Dataset::DoubanMovie => 0xD003,
            Dataset::Flixster => 0xF11C,
            Dataset::LastFm => 0x1A57,
        }
    }

    /// The learned GAPs the paper uses for this dataset in §7.3 (Last.fm has
    /// no inform signal, so the paper uses a synthetic Q).
    pub fn learned_gap(self) -> comic_core::Gap {
        use comic_core::Gap;
        match self {
            // The Unbearable Lightness of Being / Norwegian Wood.
            Dataset::DoubanBook => Gap::new(0.75, 0.85, 0.92, 0.97).unwrap(),
            // Fight Club / Se7en.
            Dataset::DoubanMovie => Gap::new(0.84, 0.89, 0.89, 0.95).unwrap(),
            // Monster Inc / Shrek.
            Dataset::Flixster => Gap::new(0.88, 0.92, 0.92, 0.96).unwrap(),
            // Synthetic (§7.3).
            Dataset::LastFm => Gap::new(0.5, 0.75, 0.5, 0.75).unwrap(),
        }
    }

    /// Instantiate the stand-in at `size_factor` of paper scale with
    /// weighted-cascade probabilities. Flixster additionally extracts the
    /// largest SCC, mirroring the paper's preprocessing.
    pub fn instantiate(self, size_factor: f64) -> DiGraph {
        let (n0, m0) = self.paper_scale();
        let n = ((n0 as f64 * size_factor) as usize).max(200);
        let m = ((m0 as f64 * size_factor) as usize).max(5 * n);
        let mut rng = SmallRng::seed_from_u64(self.gen_seed());
        let topo = chung_lu(
            &ChungLuConfig {
                n,
                target_edges: m,
                exponent: self.exponent(),
            },
            &mut rng,
        )
        .expect("stand-in configuration is valid");
        let topo = if self == Dataset::Flixster {
            let (scc, _) = largest_scc(&topo);
            if scc.num_nodes() >= n / 10 {
                scc
            } else {
                topo // extremely sparse scales: keep the full graph
            }
        } else {
            topo
        };
        ProbModel::WeightedCascade.apply(&topo, &mut rng)
    }
}

/// Power-law graphs for the Figure 7(b) scalability sweep: `sizes` node
/// counts with exponent 2.16 and average degree ≈ 5, as in the paper.
pub fn scalability_series(sizes: &[usize]) -> Vec<(usize, DiGraph)> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = SmallRng::seed_from_u64(0x5CA1E + n as u64);
            let topo = chung_lu(
                &ChungLuConfig {
                    n,
                    target_edges: 5 * n / 2,
                    exponent: 2.16,
                },
                &mut rng,
            )
            .expect("valid scalability config");
            (n, ProbModel::WeightedCascade.apply(&topo, &mut rng))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stand_ins_instantiate_at_small_scale() {
        for d in Dataset::ALL {
            let g = d.instantiate(0.05);
            assert!(g.num_nodes() >= 200, "{}", d.name());
            assert!(g.num_edges() > g.num_nodes(), "{}", d.name());
            let s = comic_graph::stats::stats(&g);
            // Tail heaviness shrinks with scale; Flixster is deliberately
            // the mildest (paper max/avg ≈ 13 vs Douban-Book's ≈ 260).
            assert!(
                s.max_out_degree as f64 > 3.0 * s.avg_out_degree,
                "{} should be heavy-tailed: {s}",
                d.name()
            );
        }
    }

    #[test]
    fn deterministic_per_dataset() {
        let a = Dataset::Flixster.instantiate(0.05);
        let b = Dataset::Flixster.instantiate(0.05);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn learned_gaps_are_mutually_complementary() {
        for d in Dataset::ALL {
            assert_eq!(
                d.learned_gap().regime(),
                comic_core::Regime::MutualComplement,
                "{}",
                d.name()
            );
        }
    }

    #[test]
    fn scalability_series_scales() {
        let series = scalability_series(&[500, 1000]);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1.num_nodes(), 500);
        assert_eq!(series[1].1.num_nodes(), 1000);
    }
}
