//! # comic-bench
//!
//! The experiment harness: everything needed to regenerate every table and
//! figure of the paper's evaluation (§7) on the offline dataset stand-ins.
//!
//! * [`datasets`] — the dataset registry: committed fixture corpora and
//!   real SNAP files behind `--dataset <name|path>` (file → probability
//!   model → manifest validation → digest-checked binary cache), plus
//!   synthetic stand-ins for Flixster / Douban-Book / Douban-Movie /
//!   Last.fm matched to Table 1's scale and degree profile (see DESIGN.md
//!   §2), at a scaled-down default size with `--full` for paper scale.
//! * [`invariance`] — the thread-count-invariance test harness enforcing
//!   the workspace determinism contract (learning, generation,
//!   RR-generation, seed selection) as one API.
//! * [`report`] — plain-text table/series rendering shaped like the paper's
//!   tables, plus CSV output.
//! * [`metrics`] — percentiles, snapshot rounding, and serving outcome
//!   tallies shared by the load driver and the chaos suite.
//! * [`runtime`] — wall-clock measurement helpers.
//! * [`exp`] — one module per table/figure; the `src/bin/*` drivers are
//!   thin wrappers around these.
//!
//! Run everything: `cargo run -p comic-bench --release --bin run_all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use comic_ris::select::SelectorKind;
use datasets::{DataSource, Dataset, DatasetError};
use std::sync::Arc;

pub mod datasets;
pub mod exp;
pub mod invariance;
pub mod metrics;
pub mod report;
pub mod runtime;

/// Shared experiment scale knobs, parsed from CLI args by the drivers.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Fraction of the paper's dataset sizes to instantiate (default 0.12,
    /// keeping the whole harness in the minutes range; `--full` = 1.0).
    pub size_factor: f64,
    /// Monte-Carlo iterations for quality evaluation (paper: 10,000).
    pub mc_iterations: usize,
    /// Seed budget k (paper: 50).
    pub k: usize,
    /// RR-set cap guarding the harness against degenerate θ blow-ups
    /// (`None` = faithful θ).
    pub max_rr_sets: Option<u64>,
    /// Base RNG seed for the whole experiment.
    pub seed: u64,
    /// Worker threads for RR-set generation and MC evaluation (`0` = one
    /// per core). Results are deterministic for a fixed `(seed, threads)`
    /// pair, so pin `--threads` when regenerating paper tables for
    /// comparison across machines.
    pub threads: usize,
    /// Max-coverage selection strategy for every RIS pipeline run
    /// (`--selector naive|celf`; default CELF). Selectors return identical
    /// seed sets, so this only moves the selection-phase wall clock.
    pub selector: SelectorKind,
    /// On-disk dataset to run on instead of the synthetic stand-ins
    /// (`--dataset <registry name | path[:prob-model]>`; see
    /// [`datasets::load`]). `None` = the four Table 1 stand-ins.
    pub dataset: Option<String>,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            size_factor: 0.12,
            mc_iterations: 10_000,
            k: 50,
            max_rr_sets: Some(4_000_000),
            seed: 20160905, // VLDB'16 opening day
            threads: 0,
            selector: SelectorKind::default(),
            dataset: None,
        }
    }
}

impl Scale {
    /// Parse `--full`, `--size-factor X`, `--k K`, `--mc N`, `--seed S`,
    /// `--threads T`, `--selector naive|celf`, `--dataset NAME|PATH` from
    /// the process arguments; unknown arguments are ignored so each driver
    /// can add its own.
    pub fn from_args() -> Scale {
        let mut scale = Scale::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => scale.size_factor = 1.0,
                "--size-factor" if i + 1 < args.len() => {
                    scale.size_factor = args[i + 1].parse().unwrap_or(scale.size_factor);
                    i += 1;
                }
                "--k" if i + 1 < args.len() => {
                    scale.k = args[i + 1].parse().unwrap_or(scale.k);
                    i += 1;
                }
                "--mc" if i + 1 < args.len() => {
                    scale.mc_iterations = args[i + 1].parse().unwrap_or(scale.mc_iterations);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    scale.seed = args[i + 1].parse().unwrap_or(scale.seed);
                    i += 1;
                }
                "--threads" if i + 1 < args.len() => {
                    scale.threads = args[i + 1].parse().unwrap_or(scale.threads);
                    i += 1;
                }
                "--selector" if i + 1 < args.len() => {
                    scale.selector = SelectorKind::parse(&args[i + 1]).unwrap_or(scale.selector);
                    i += 1;
                }
                "--dataset" if i + 1 < args.len() => {
                    scale.dataset = Some(args[i + 1].clone());
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }

    /// The data sources this run iterates: the single `--dataset` when one
    /// was given (pulled through the full ingestion path, with the binary
    /// cache), the four synthetic stand-ins otherwise.
    pub fn sources(&self) -> Result<Vec<DataSource>, DatasetError> {
        match &self.dataset {
            Some(arg) => Ok(vec![DataSource::Loaded(Arc::new(datasets::load(arg)?))]),
            None => Ok(DataSource::default_sources()),
        }
    }

    /// Like [`Scale::sources`] for single-dataset drivers: the `--dataset`
    /// when given, `default` otherwise.
    pub fn source_or(&self, default: Dataset) -> Result<DataSource, DatasetError> {
        match &self.dataset {
            Some(arg) => Ok(DataSource::Loaded(Arc::new(datasets::load(arg)?))),
            None => Ok(DataSource::Synthetic(default)),
        }
    }

    /// [`Scale::sources`] for `main()`s: exit with a message on a bad
    /// `--dataset` instead of returning an error.
    pub fn sources_or_exit(&self) -> Vec<DataSource> {
        self.sources().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// [`Scale::source_or`] for `main()`s: exit with a message on a bad
    /// `--dataset`.
    pub fn source_or_exit(&self, default: Dataset) -> DataSource {
        self.source_or(default).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_sane() {
        let s = Scale::default();
        assert!(s.size_factor > 0.0 && s.size_factor <= 1.0);
        assert!(s.mc_iterations >= 1000);
        assert_eq!(s.k, 50);
    }
}
