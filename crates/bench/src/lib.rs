//! # comic-bench
//!
//! The experiment harness: everything needed to regenerate every table and
//! figure of the paper's evaluation (§7) on the offline dataset stand-ins.
//!
//! * [`datasets`] — synthetic stand-ins for Flixster / Douban-Book /
//!   Douban-Movie / Last.fm matched to Table 1's scale and degree profile
//!   (see DESIGN.md §2 for the substitution rationale), at a scaled-down
//!   default size with `--full` available for paper scale.
//! * [`report`] — plain-text table/series rendering shaped like the paper's
//!   tables, plus CSV output.
//! * [`runtime`] — wall-clock measurement helpers.
//! * [`exp`] — one module per table/figure; the `src/bin/*` drivers are
//!   thin wrappers around these.
//!
//! Run everything: `cargo run -p comic-bench --release --bin run_all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use comic_ris::select::SelectorKind;

pub mod datasets;
pub mod exp;
pub mod report;
pub mod runtime;

/// Shared experiment scale knobs, parsed from CLI args by the drivers.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Fraction of the paper's dataset sizes to instantiate (default 0.12,
    /// keeping the whole harness in the minutes range; `--full` = 1.0).
    pub size_factor: f64,
    /// Monte-Carlo iterations for quality evaluation (paper: 10,000).
    pub mc_iterations: usize,
    /// Seed budget k (paper: 50).
    pub k: usize,
    /// RR-set cap guarding the harness against degenerate θ blow-ups
    /// (`None` = faithful θ).
    pub max_rr_sets: Option<u64>,
    /// Base RNG seed for the whole experiment.
    pub seed: u64,
    /// Worker threads for RR-set generation and MC evaluation (`0` = one
    /// per core). Results are deterministic for a fixed `(seed, threads)`
    /// pair, so pin `--threads` when regenerating paper tables for
    /// comparison across machines.
    pub threads: usize,
    /// Max-coverage selection strategy for every RIS pipeline run
    /// (`--selector naive|celf`; default CELF). Selectors return identical
    /// seed sets, so this only moves the selection-phase wall clock.
    pub selector: SelectorKind,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            size_factor: 0.12,
            mc_iterations: 10_000,
            k: 50,
            max_rr_sets: Some(4_000_000),
            seed: 20160905, // VLDB'16 opening day
            threads: 0,
            selector: SelectorKind::default(),
        }
    }
}

impl Scale {
    /// Parse `--full`, `--size-factor X`, `--k K`, `--mc N`, `--seed S`,
    /// `--threads T`, `--selector naive|celf` from the process arguments;
    /// unknown arguments are ignored so each driver can add its own.
    pub fn from_args() -> Scale {
        let mut scale = Scale::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--full" => scale.size_factor = 1.0,
                "--size-factor" if i + 1 < args.len() => {
                    scale.size_factor = args[i + 1].parse().unwrap_or(scale.size_factor);
                    i += 1;
                }
                "--k" if i + 1 < args.len() => {
                    scale.k = args[i + 1].parse().unwrap_or(scale.k);
                    i += 1;
                }
                "--mc" if i + 1 < args.len() => {
                    scale.mc_iterations = args[i + 1].parse().unwrap_or(scale.mc_iterations);
                    i += 1;
                }
                "--seed" if i + 1 < args.len() => {
                    scale.seed = args[i + 1].parse().unwrap_or(scale.seed);
                    i += 1;
                }
                "--threads" if i + 1 < args.len() => {
                    scale.threads = args[i + 1].parse().unwrap_or(scale.threads);
                    i += 1;
                }
                "--selector" if i + 1 < args.len() => {
                    scale.selector = SelectorKind::parse(&args[i + 1]).unwrap_or(scale.selector);
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_sane() {
        let s = Scale::default();
        assert!(s.size_factor > 0.0 && s.size_factor <= 1.0);
        assert!(s.mc_iterations >= 1000);
        assert_eq!(s.k, 50);
    }
}
