//! Regenerate Table 8 (sandwich factors, learned + stress GAPs).
use comic_bench::datasets::Dataset;
fn main() {
    let scale = comic_bench::Scale::from_args();
    print!("{}", comic_bench::exp::table8::run(&scale, &Dataset::ALL));
}
