//! Regenerate Table 8 (sandwich factors, learned + stress GAPs).
fn main() {
    let scale = comic_bench::Scale::from_args();
    let sources = scale.sources_or_exit();
    print!("{}", comic_bench::exp::table8::run(&scale, &sources));
}
