//! Run every table and figure in sequence (EXPERIMENTS.md is produced from
//! this output). Flags: --full, --size-factor X, --k K, --mc N, --seed S,
//! --dataset NAME|PATH (swap the synthetic stand-ins for one on-disk
//! dataset pulled through the ingestion pipeline).
use comic_bench::datasets::{DataSource, Dataset};
use comic_bench::exp;
use comic_bench::exp::common::OppositeMode;
use comic_bench::runtime::{fmt_secs, timed};

fn section<T: std::fmt::Display>(name: &str, f: impl FnOnce() -> T) {
    let (out, secs) = timed(f);
    println!("{out}");
    println!("[{name} took {}]\n", fmt_secs(secs));
}

fn main() {
    let scale = comic_bench::Scale::from_args();
    let sources = scale.sources_or_exit();
    println!(
        "# Com-IC experiment suite  (size-factor {:.2}, k = {}, {} MC iterations, seed {})\n",
        scale.size_factor, scale.k, scale.mc_iterations, scale.seed
    );
    if let Some(l) = sources.iter().find_map(|s| s.loaded()) {
        println!(
            "# dataset: {} from {} ({}, digest {:#018x})\n",
            l.name,
            l.source.display(),
            if l.from_cache {
                "binary cache"
            } else {
                "text parse"
            },
            l.digest
        );
    }
    section("table1", || exp::table1::run(&scale, &sources));
    section("table2", || {
        exp::tables234::run(&scale, OppositeMode::Ranks101To200, &sources)
    });
    section("table3", || {
        exp::tables234::run(&scale, OppositeMode::Random100, &sources)
    });
    section("table4", || {
        exp::tables234::run(&scale, OppositeMode::Top100, &sources)
    });
    section("tables5-7", || {
        sources
            .iter()
            .filter(|s| s.synthetic() != Some(Dataset::LastFm))
            .map(|s| exp::tables567::run(&scale, s))
            .collect::<Vec<_>>()
            .join("\n")
    });
    section("table8", || exp::table8::run(&scale, &sources));
    section("fig4", || {
        let fig4_sources: Vec<DataSource> = if scale.dataset.is_some() {
            sources.clone()
        } else {
            vec![
                DataSource::Synthetic(Dataset::Flixster),
                DataSource::Synthetic(Dataset::DoubanBook),
            ]
        };
        fig4_sources
            .iter()
            .map(|s| exp::fig4::run(&scale, s))
            .collect::<Vec<_>>()
            .join("\n")
    });
    section("fig5", || {
        sources
            .iter()
            .map(|s| exp::fig5::run(&scale, s))
            .collect::<Vec<_>>()
            .join("\n")
    });
    section("fig6", || {
        sources
            .iter()
            .map(|s| exp::fig6::run(&scale, s))
            .collect::<Vec<_>>()
            .join("\n")
    });
    section("fig7a", || {
        exp::fig7::run_times(&scale, &sources, (scale.k / 5).max(2), 1_000)
    });
    section("fig7b", || {
        exp::fig7::run_scalability(&scale, &[10_000, 20_000, 40_000])
    });
    section("fig8", || {
        // Reuse the already-loaded source rather than ingesting it again.
        let source = match &sources[..] {
            [only] if scale.dataset.is_some() => only.clone(),
            _ => DataSource::Synthetic(Dataset::Flixster),
        };
        exp::fig8::run(&scale, &source, 1_000)
    });
}
