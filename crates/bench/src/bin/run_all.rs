//! Run every table and figure in sequence (EXPERIMENTS.md is produced from
//! this output). Flags: --full, --size-factor X, --k K, --mc N, --seed S.
use comic_bench::datasets::Dataset;
use comic_bench::exp;
use comic_bench::exp::common::OppositeMode;
use comic_bench::runtime::{fmt_secs, timed};

fn section<T: std::fmt::Display>(name: &str, f: impl FnOnce() -> T) {
    let (out, secs) = timed(f);
    println!("{out}");
    println!("[{name} took {}]\n", fmt_secs(secs));
}

fn main() {
    let scale = comic_bench::Scale::from_args();
    println!(
        "# Com-IC experiment suite  (size-factor {:.2}, k = {}, {} MC iterations, seed {})\n",
        scale.size_factor, scale.k, scale.mc_iterations, scale.seed
    );
    section("table1", || exp::table1::run(&scale));
    section("table2", || {
        exp::tables234::run(&scale, OppositeMode::Ranks101To200, &Dataset::ALL)
    });
    section("table3", || {
        exp::tables234::run(&scale, OppositeMode::Random100, &Dataset::ALL)
    });
    section("table4", || {
        exp::tables234::run(&scale, OppositeMode::Top100, &Dataset::ALL)
    });
    section("table5", || exp::tables567::run(&scale, Dataset::Flixster));
    section("table6", || {
        exp::tables567::run(&scale, Dataset::DoubanBook)
    });
    section("table7", || {
        exp::tables567::run(&scale, Dataset::DoubanMovie)
    });
    section("table8", || exp::table8::run(&scale, &Dataset::ALL));
    section("fig4", || {
        format!(
            "{}\n{}",
            exp::fig4::run(&scale, Dataset::Flixster),
            exp::fig4::run(&scale, Dataset::DoubanBook)
        )
    });
    section("fig5", || {
        Dataset::ALL
            .iter()
            .map(|&d| exp::fig5::run(&scale, d))
            .collect::<Vec<_>>()
            .join("\n")
    });
    section("fig6", || {
        Dataset::ALL
            .iter()
            .map(|&d| exp::fig6::run(&scale, d))
            .collect::<Vec<_>>()
            .join("\n")
    });
    section("fig7a", || {
        exp::fig7::run_times(&scale, &Dataset::ALL, (scale.k / 5).max(2), 1_000)
    });
    section("fig7b", || {
        exp::fig7::run_scalability(&scale, &[10_000, 20_000, 40_000])
    });
    section("fig8", || exp::fig8::run(&scale, Dataset::Flixster, 1_000));
}
