//! Regenerate Table 6 (learned GAPs on Douban-Book, or on --dataset).
use comic_bench::datasets::Dataset;
fn main() {
    let scale = comic_bench::Scale::from_args();
    let source = scale.source_or_exit(Dataset::DoubanBook);
    print!("{}", comic_bench::exp::tables567::run(&scale, &source));
}
