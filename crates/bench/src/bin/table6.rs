//! Regenerate Table 6 (learned GAPs, Douban-Book pairs).
fn main() {
    let scale = comic_bench::Scale::from_args();
    print!(
        "{}",
        comic_bench::exp::tables567::run(&scale, comic_bench::datasets::Dataset::DoubanBook)
    );
}
