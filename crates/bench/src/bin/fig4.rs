//! Regenerate Figure 4 (epsilon sweep) on Flixster and Douban-Book, or on
//! the single --dataset when one is given.
use comic_bench::datasets::{DataSource, Dataset};
fn main() {
    let scale = comic_bench::Scale::from_args();
    let sources = if scale.dataset.is_some() {
        scale.sources_or_exit()
    } else {
        vec![
            DataSource::Synthetic(Dataset::Flixster),
            DataSource::Synthetic(Dataset::DoubanBook),
        ]
    };
    for src in &sources {
        println!("{}", comic_bench::exp::fig4::run(&scale, src));
    }
}
