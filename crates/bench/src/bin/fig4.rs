//! Regenerate Figure 4 (epsilon sweep) on Flixster and Douban-Book.
use comic_bench::datasets::Dataset;
fn main() {
    let scale = comic_bench::Scale::from_args();
    for d in [Dataset::Flixster, Dataset::DoubanBook] {
        println!("{}", comic_bench::exp::fig4::run(&scale, d));
    }
}
