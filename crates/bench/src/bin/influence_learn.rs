//! `comic-bench influence_learn` — run the learning layer (edge influence
//! probabilities + GAPs) over a dataset and an action log, on any number of
//! worker threads.
//!
//! ```text
//! cargo run -p comic-bench --bin influence_learn --                          # fixture-small
//! cargo run -p comic-bench --bin influence_learn -- --threads 8
//! cargo run -p comic-bench --bin influence_learn -- --dataset fixture-small \
//!     --log tests/fixtures/fixture-small.log --tau 100000 --default-p 0.0
//! ```
//!
//! The learned output is byte-identical for every `--threads` value (the
//! learning-layer determinism contract); the bin prints the learned-graph
//! digest so that is directly checkable from the shell:
//!
//! ```text
//! for t in 1 4; do influence_learn --threads $t | grep digest; done
//! ```

use comic_actionlog::{learn_gaps_with, GapLearnConfig, InfluenceLearnConfig, ItemId};
use comic_bench::datasets;
use comic_bench::runtime::{fmt_secs, timed};
use comic_bench::Scale;
use comic_graph::io::graph_digest;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let scale = Scale::from_args();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dataset = scale
        .dataset
        .clone()
        .unwrap_or_else(|| "fixture-small".into());
    let tau: u64 = arg_value(&args, "--tau")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let default_p: f64 = arg_value(&args, "--default-p")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);

    let loaded = datasets::load(&dataset).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let log_path = arg_value(&args, "--log")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            // Default: the `<source>.log` sitting next to the dataset file
            // (`fixture-small.txt` → `fixture-small.log`). Never silently
            // substitute another dataset's log — user ids are node ids, so
            // a mismatched log would "learn" plausible-looking garbage.
            let candidate = loaded.source.with_extension("log");
            if !candidate.exists() {
                eprintln!(
                    "error: no action log at {} — pass one explicitly with --log PATH \
                     (the committed corpus ships tests/fixtures/fixture-small.log)",
                    candidate.display()
                );
                std::process::exit(2);
            }
            candidate
        });
    let log = std::fs::File::open(&log_path)
        .map_err(comic_actionlog::LogError::Io)
        .and_then(comic_actionlog::io::read_log)
        .unwrap_or_else(|e| {
            eprintln!("error: cannot read action log {}: {e}", log_path.display());
            std::process::exit(2);
        });

    println!(
        "learning on '{}' ({} nodes, {} edges) from {} ({} records), threads={}",
        loaded.name,
        loaded.graph.num_nodes(),
        loaded.graph.num_edges(),
        log_path.display(),
        log.len(),
        scale.threads,
    );

    let cfg = InfluenceLearnConfig {
        tau,
        default_p,
        threads: scale.threads,
    };
    let (learned, secs) = timed(|| comic_actionlog::learn_influence(&loaded.graph, &log, &cfg));
    let informative = learned.edges().filter(|(_, e)| e.p > default_p).count();
    let mean_p = learned.edges().map(|(_, e)| e.p).sum::<f64>() / learned.num_edges().max(1) as f64;
    println!(
        "influence: done in {} — {informative}/{} informative edges, mean p {mean_p:.4}, \
         learned-graph digest {:#018x}",
        fmt_secs(secs),
        learned.num_edges(),
        graph_digest(&learned),
    );

    let gap_cfg = GapLearnConfig {
        threads: scale.threads,
    };
    let (gaps, gsecs) = timed(|| learn_gaps_with(&log, ItemId(0), ItemId(1), &gap_cfg));
    match gaps {
        Ok(l) => println!(
            "gaps (items 0/1) in {}: q_A|0 = {}, q_A|B = {}, q_B|0 = {}, q_B|A = {}",
            fmt_secs(gsecs),
            l.q_a0,
            l.q_ab,
            l.q_b0,
            l.q_ba
        ),
        Err(e) => println!("gaps (items 0/1): not learnable from this log ({e})"),
    }
}
