//! Regenerate Table 2 (opposite seeds = VanillaIC ranks 101-200).
use comic_bench::exp::common::OppositeMode;
fn main() {
    let scale = comic_bench::Scale::from_args();
    let sources = scale.sources_or_exit();
    print!(
        "{}",
        comic_bench::exp::tables234::run(&scale, OppositeMode::Ranks101To200, &sources)
    );
}
