//! Regenerate Table 4 (opposite seeds = VanillaIC top-100).
use comic_bench::exp::common::OppositeMode;
fn main() {
    let scale = comic_bench::Scale::from_args();
    let sources = scale.sources_or_exit();
    print!(
        "{}",
        comic_bench::exp::tables234::run(&scale, OppositeMode::Top100, &sources)
    );
}
