//! `comic-bench datasets` — list, validate, and prepare the dataset
//! registry.
//!
//! ```text
//! cargo run -p comic-bench --bin datasets --                 # list the registry
//! cargo run -p comic-bench --bin datasets -- --validate      # full ingestion check
//! cargo run -p comic-bench --bin datasets -- --prepare       # (re)build binary caches
//! cargo run -p comic-bench --bin datasets -- --validate --dataset fixture-small
//! ```
//!
//! `--validate` pulls every resolvable entry through the complete path —
//! text parse, probability model, manifest check, cache write, then a
//! second digest-validated cache load — and exits non-zero if any required
//! dataset is missing or any loaded one contradicts its manifest.

use comic_bench::datasets::{load_spec, CacheMode, DatasetSpec, REGISTRY};
use comic_bench::report::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let validate = args.iter().any(|a| a == "--validate");
    let prepare = args.iter().any(|a| a == "--prepare");
    let only: Option<&str> = args
        .iter()
        .position(|a| a == "--dataset")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    if let Some(bad) = args.iter().find(|a| {
        a.starts_with("--")
            && !["--validate", "--prepare", "--list", "--dataset"].contains(&a.as_str())
    }) {
        eprintln!("unknown flag {bad}; try --list, --validate, --prepare, --dataset NAME");
        std::process::exit(2);
    }

    let specs: Vec<&DatasetSpec> = REGISTRY
        .iter()
        .filter(|s| only.is_none_or(|n| s.name == n))
        .collect();
    if specs.is_empty() {
        eprintln!(
            "no registry entry named '{}'; known: {}",
            only.unwrap_or(""),
            REGISTRY
                .iter()
                .map(|s| s.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    }

    if !validate && !prepare {
        list(&specs);
        return;
    }

    // Both --validate and --prepare must exercise the full text-parse path,
    // never an existing cache — validation of a stale cache would vouch for
    // a source file that no longer parses or matches the manifest.
    let mode = CacheMode::Refresh;
    let mut failures = 0usize;
    for spec in &specs {
        let source = spec.source_path();
        if !source.exists() {
            if spec.required {
                println!(
                    "FAIL {:<16} missing required file {}",
                    spec.name,
                    source.display()
                );
                failures += 1;
            } else {
                println!(
                    "skip {:<16} not downloaded ({})",
                    spec.name,
                    source.display()
                );
            }
            continue;
        }
        match load_spec(spec, mode) {
            Ok(first) => {
                // Round-trip the cache: the second load must come from the
                // binary file and reproduce the digest exactly.
                match load_spec(spec, CacheMode::Use) {
                    Ok(second) if second.from_cache && second.digest == first.digest => {
                        // A spec without manifest expectations passed the
                        // ingestion round-trip but its sizes were checked
                        // against nothing — say so instead of "ok".
                        let verdict = if spec.manifest_complete() {
                            "ok  "
                        } else {
                            "unverified"
                        };
                        println!(
                            "{verdict} {:<16} {} (digest {:#018x}, cache {})",
                            spec.name,
                            first.stats(),
                            first.digest,
                            if first.from_cache { "hit" } else { "built" },
                        );
                    }
                    Ok(second) => {
                        println!(
                            "FAIL {:<16} cache round-trip mismatch (from_cache={}, {:#018x} vs {:#018x})",
                            spec.name, second.from_cache, second.digest, first.digest
                        );
                        failures += 1;
                    }
                    Err(e) => {
                        println!("FAIL {:<16} cache reload failed: {e}", spec.name);
                        failures += 1;
                    }
                }
            }
            Err(e) => {
                println!("FAIL {:<16} {e}", spec.name);
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} dataset(s) failed validation");
        std::process::exit(1);
    }
}

fn list(specs: &[&DatasetSpec]) {
    let mut t = Table::new("Dataset registry".to_string()).header(&[
        "name",
        "file",
        "prob",
        "expected |V|",
        "expected |E|",
        "status",
        "note",
    ]);
    for spec in specs {
        let source = spec.source_path();
        let status = if !source.exists() {
            if spec.required {
                "MISSING (required)"
            } else {
                "not downloaded"
            }
        } else if spec.cache_path().exists() {
            "present + cached"
        } else {
            "present"
        };
        let fmt_opt = |v: Option<usize>| v.map_or("-".to_string(), |v| v.to_string());
        t.row(vec![
            spec.name.to_string(),
            spec.path.to_string(),
            spec.prob.label(),
            fmt_opt(spec.expected_nodes),
            fmt_opt(spec.expected_edges),
            status.to_string(),
            spec.note.to_string(),
        ]);
    }
    print!("{}", t.render());
}
