//! Regenerate Figure 5 (A-spread vs |S_A|) on all four datasets.
use comic_bench::datasets::Dataset;
fn main() {
    let scale = comic_bench::Scale::from_args();
    for d in Dataset::ALL {
        println!("{}", comic_bench::exp::fig5::run(&scale, d));
    }
}
