//! Regenerate Figure 5 (A-spread vs |S_A|) on all sources.
fn main() {
    let scale = comic_bench::Scale::from_args();
    for src in &scale.sources_or_exit() {
        println!("{}", comic_bench::exp::fig5::run(&scale, src));
    }
}
