//! Regenerate Figure 8 (sandwich stress test) on Flixster, or on --dataset.
use comic_bench::datasets::Dataset;
fn main() {
    let scale = comic_bench::Scale::from_args();
    let source = scale.source_or_exit(Dataset::Flixster);
    print!("{}", comic_bench::exp::fig8::run(&scale, &source, 1_000));
}
