//! Regenerate Figure 8 (sandwich stress test) on Flixster.
fn main() {
    let scale = comic_bench::Scale::from_args();
    print!(
        "{}",
        comic_bench::exp::fig8::run(&scale, comic_bench::datasets::Dataset::Flixster, 1_000)
    );
}
