//! Regenerate Table 3 (opposite seeds = 100 random nodes).
use comic_bench::exp::common::OppositeMode;
fn main() {
    let scale = comic_bench::Scale::from_args();
    let sources = scale.sources_or_exit();
    print!(
        "{}",
        comic_bench::exp::tables234::run(&scale, OppositeMode::Random100, &sources)
    );
}
