//! Regenerate Figure 6 (boost vs |S_B|) on all sources.
fn main() {
    let scale = comic_bench::Scale::from_args();
    for src in &scale.sources_or_exit() {
        println!("{}", comic_bench::exp::fig6::run(&scale, src));
    }
}
