//! Regenerate Figure 6 (boost vs |S_B|) on all four datasets.
use comic_bench::datasets::Dataset;
fn main() {
    let scale = comic_bench::Scale::from_args();
    for d in Dataset::ALL {
        println!("{}", comic_bench::exp::fig6::run(&scale, d));
    }
}
