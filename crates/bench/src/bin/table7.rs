//! Regenerate Table 7 (learned GAPs, Douban-Movie pairs).
fn main() {
    let scale = comic_bench::Scale::from_args();
    print!(
        "{}",
        comic_bench::exp::tables567::run(&scale, comic_bench::datasets::Dataset::DoubanMovie)
    );
}
