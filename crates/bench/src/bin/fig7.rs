//! Regenerate Figure 7: (a) algorithm running times per dataset; with
//! --scalability, (b) the power-law size sweep instead.
fn main() {
    let scale = comic_bench::Scale::from_args();
    let scalability = std::env::args().any(|a| a == "--scalability");
    if scalability {
        // Paper: 0.2M..1M nodes; defaults here stay laptop-sized.
        let sizes: Vec<usize> = if scale.size_factor >= 1.0 {
            vec![200_000, 400_000, 600_000, 800_000, 1_000_000]
        } else {
            vec![20_000, 40_000, 60_000, 80_000, 100_000]
        };
        print!(
            "{}",
            comic_bench::exp::fig7::run_scalability(&scale, &sizes)
        );
    } else {
        let greedy_k = (scale.k / 5).max(2);
        let sources = scale.sources_or_exit();
        print!(
            "{}",
            comic_bench::exp::fig7::run_times(&scale, &sources, greedy_k, 1_000)
        );
    }
}
