//! Regenerate Table 1. Flags: --full, --size-factor X.
fn main() {
    let scale = comic_bench::Scale::from_args();
    print!("{}", comic_bench::exp::table1::run(&scale));
}
