//! Regenerate Table 1. Flags: --full, --size-factor X, --dataset NAME|PATH.
fn main() {
    let scale = comic_bench::Scale::from_args();
    let sources = scale.sources_or_exit();
    print!("{}", comic_bench::exp::table1::run(&scale, &sources));
}
