//! Table 1 — dataset statistics.

use crate::datasets::DataSource;
use crate::report::Table;
use crate::Scale;

/// Regenerate Table 1 for the given sources at the configured scale.
pub fn run(scale: &Scale, sources: &[DataSource]) -> String {
    let mut t = Table::new(format!(
        "Table 1 — graph statistics (stand-ins at {:.0}% of paper scale)",
        100.0 * scale.size_factor
    ))
    .header(&[
        "dataset",
        "# nodes",
        "# edges",
        "avg out-degree",
        "max out-degree",
        "paper |V|",
        "paper |E|",
        "dup-merged",
    ]);
    for src in sources {
        let (s, dup) = match src.loaded() {
            Some(l) => (
                l.stats(),
                // Unknown on cache hits: the merged graph was loaded
                // without re-reading the text.
                l.duplicates_merged
                    .map_or("?".to_string(), |d| d.to_string()),
            ),
            None => {
                let g = src.graph(scale.size_factor);
                (comic_graph::stats::stats(&g), "-".to_string())
            }
        };
        let (pn, pm) = match src.synthetic() {
            Some(d) => {
                let (pn, pm) = d.paper_scale();
                (
                    format!("{:.1}K", pn as f64 / 1000.0),
                    format!("{:.0}K", pm as f64 / 1000.0),
                )
            }
            None => ("-".to_string(), "-".to_string()),
        };
        t.row(vec![
            src.name(),
            s.nodes.to_string(),
            s.edges.to_string(),
            format!("{:.1}", s.avg_out_degree),
            s.max_out_degree.to_string(),
            pn,
            pm,
            dup,
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_datasets() {
        let out = run(
            &Scale {
                size_factor: 0.03,
                ..Scale::default()
            },
            &DataSource::default_sources(),
        );
        for name in ["Douban-Book", "Douban-Movie", "Flixster", "Last.fm"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }
}
