//! Table 1 — dataset statistics.

use crate::datasets::Dataset;
use crate::report::Table;
use crate::Scale;
use comic_graph::stats::stats;

/// Regenerate Table 1 for the stand-ins at the configured scale.
pub fn run(scale: &Scale) -> String {
    let mut t = Table::new(format!(
        "Table 1 — graph statistics (stand-ins at {:.0}% of paper scale)",
        100.0 * scale.size_factor
    ))
    .header(&[
        "dataset",
        "# nodes",
        "# edges",
        "avg out-degree",
        "max out-degree",
        "paper |V|",
        "paper |E|",
    ]);
    for d in Dataset::ALL {
        let g = d.instantiate(scale.size_factor);
        let s = stats(&g);
        let (pn, pm) = d.paper_scale();
        t.row(vec![
            d.name().to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            format!("{:.1}", s.avg_out_degree),
            s.max_out_degree.to_string(),
            format!("{:.1}K", pn as f64 / 1000.0),
            format!("{:.0}K", pm as f64 / 1000.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_datasets() {
        let out = run(&Scale {
            size_factor: 0.03,
            ..Scale::default()
        });
        for name in ["Douban-Book", "Douban-Movie", "Flixster", "Last.fm"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }
}
