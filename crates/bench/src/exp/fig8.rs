//! Figure 8 — sandwich stress test: compare the A-spread (or boost)
//! achieved by the seed sets from the true objective (Greedy on σ), the
//! lower bound µ and the upper bound ν, all evaluated under the *true*
//! GAPs. The paper's finding: even in adversarial settings the three are
//! within a fraction of a percent (`SA_error ≤ 0.4%`).
//!
//! Stress settings: `q_{A|∅} = 0.3`, `q_{A|B} = 0.8`; SelfInfMax varies
//! `q_{B|∅} ∈ {0.1, 0.5, 0.9}` at `q_{B|A} = 0.96`; CompInfMax varies
//! `q_{B|A} ∈ {0.1, 0.5, 0.9}` at `q_{B|∅} = 0.1`.

use crate::datasets::DataSource;
use crate::exp::common::OppositeMode;
use crate::report::Table;
use crate::Scale;
use comic_algos::greedy::GreedyConfig;
use comic_algos::{CompInfMax, SelfInfMax};
use comic_core::Gap;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Regenerate Figure 8 on one source. `greedy_mc` controls the Greedy
/// candidate's per-evaluation MC budget (the dominant cost).
pub fn run(scale: &Scale, source: &DataSource, greedy_mc: usize) -> String {
    let g = source.graph(scale.size_factor);
    let opposite = OppositeMode::Ranks101To200.seeds(&g, 100, scale.seed);
    let gcfg = GreedyConfig {
        mc_iterations: greedy_mc,
        seed: scale.seed,
        threads: 0,
    };

    let mut t = Table::new(format!(
        "Figure 8 — sandwich candidates under true GAPs, on {}",
        source.name()
    ))
    .header(&[
        "setting",
        "sigma(S_sigma)",
        "sigma(S_mu)",
        "sigma(S_nu)",
        "SA_error",
    ]);

    // SelfInfMax rows.
    for q_b0 in [0.1, 0.5, 0.9] {
        let gap = Gap::new(0.3, 0.8, q_b0, 0.96).unwrap();
        let mut rng = SmallRng::seed_from_u64(scale.seed + 81);
        let mut solver = SelfInfMax::new(&g, gap, opposite.clone())
            .eval_iterations(scale.mc_iterations)
            .threads(scale.threads)
            .selector(scale.selector)
            .with_greedy_candidate(gcfg);
        if let Some(cap) = scale.max_rr_sets {
            solver = solver.max_rr_sets(cap);
        }
        let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");
        let report = sol.sandwich.expect("general Q+ uses the sandwich");
        let find = |name: &str| {
            report
                .candidates
                .iter()
                .find(|c| c.name == name)
                .map(|c| format!("{:.0}", c.objective))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            format!("SIM q_B|0={q_b0}"),
            find("sigma"),
            find("mu"),
            find("nu"),
            report
                .sa_error
                .map(|e| format!("{:.2}%", 100.0 * e))
                .unwrap_or_else(|| "-".into()),
        ]);
    }

    // CompInfMax rows.
    for q_ba in [0.1, 0.5, 0.9] {
        let gap = Gap::new(0.3, 0.8, 0.1f64.min(q_ba), q_ba).unwrap();
        let mut rng = SmallRng::seed_from_u64(scale.seed + 82);
        let mut solver = CompInfMax::new(&g, gap, opposite.clone())
            .eval_iterations(scale.mc_iterations)
            .threads(scale.threads)
            .selector(scale.selector)
            .with_greedy_candidate(gcfg);
        if let Some(cap) = scale.max_rr_sets {
            solver = solver.max_rr_sets(cap);
        }
        let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");
        let report = sol.sandwich.expect("q_B|A < 1 uses the sandwich");
        let find = |name: &str| {
            report
                .candidates
                .iter()
                .find(|c| c.name == name)
                .map(|c| format!("{:.1}", c.objective))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            format!("CIM q_B|A={q_ba}"),
            find("sigma"),
            "-".into(), // no µ candidate for CompInfMax (paper §7.3)
            find("nu"),
            report
                .sa_error
                .map(|e| format!("{:.2}%", 100.0 * e))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_tiny_without_greedy_blowup() {
        let scale = Scale {
            size_factor: 0.015,
            mc_iterations: 200,
            k: 2,
            max_rr_sets: Some(10_000),
            seed: 7,
            threads: 1,
            ..Scale::default()
        };
        let out = run(
            &scale,
            &DataSource::Synthetic(crate::datasets::Dataset::Flixster),
            100,
        );
        assert!(out.contains("SIM q_B|0=0.1"));
        assert!(out.contains("CIM q_B|A=0.9"));
    }
}
