//! One module per table/figure of the paper's evaluation.

pub mod common;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table8;
pub mod tables234;
pub mod tables567;
