//! Tables 5–7 — GAPs learned from action logs with 95% confidence
//! intervals.
//!
//! The proprietary logs are replaced by Com-IC-generated synthetic logs
//! whose *ground-truth* GAPs are set to the paper's learned values
//! (DESIGN.md §2), so each row shows: truth, learned estimate ± CI, and
//! whether the truth is covered — an end-to-end validation of the §7.2
//! estimators.

use crate::datasets::{DataSource, Dataset};
use crate::report::{pm, Table};
use crate::Scale;
use comic_actionlog::synth::{synthesize_pair_log, SynthConfig};
use comic_actionlog::{learn_gaps_with, GapLearnConfig, ItemId};
use comic_core::Gap;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One item pair with the paper's learned GAPs as ground truth.
pub struct PairRow {
    /// Item A's title.
    pub item_a: &'static str,
    /// Item B's title.
    pub item_b: &'static str,
    /// Ground truth = the paper's learned point estimates.
    pub truth: (f64, f64, f64, f64),
}

/// The selected pairs of Tables 5, 6 and 7.
pub fn pairs_for(dataset: Dataset) -> Vec<PairRow> {
    match dataset {
        Dataset::Flixster => vec![
            PairRow {
                item_a: "Monster Inc.",
                item_b: "Shrek",
                truth: (0.88, 0.92, 0.92, 0.96),
            },
            PairRow {
                item_a: "Gone in 60 Seconds",
                item_b: "Armageddon",
                truth: (0.63, 0.77, 0.67, 0.82),
            },
            PairRow {
                item_a: "Harry Potter: Prisoner of Azkaban",
                item_b: "What a Girl Wants",
                truth: (0.85, 0.84, 0.66, 0.67),
            },
            PairRow {
                item_a: "Shrek",
                item_b: "The Fast and The Furious",
                truth: (0.92, 0.94, 0.80, 0.79),
            },
        ],
        Dataset::DoubanBook => vec![
            PairRow {
                item_a: "The Unbearable Lightness of Being",
                item_b: "Norwegian Wood",
                truth: (0.75, 0.85, 0.92, 0.97),
            },
            PairRow {
                item_a: "Harry Potter I",
                item_b: "Harry Potter VI",
                truth: (0.99, 1.0, 0.97, 0.98),
            },
            PairRow {
                item_a: "Stories of Ming Dynasty III",
                item_b: "Stories of Ming Dynasty VI",
                truth: (0.94, 1.0, 0.88, 0.98),
            },
            PairRow {
                item_a: "Fortress Besieged",
                item_b: "Love Letter",
                truth: (0.89, 0.91, 0.82, 0.83),
            },
        ],
        Dataset::DoubanMovie => vec![
            PairRow {
                item_a: "Up",
                item_b: "3 Idiots",
                truth: (0.92, 0.94, 0.92, 0.93),
            },
            PairRow {
                item_a: "Pulp Fiction",
                item_b: "Leon",
                truth: (0.81, 0.83, 0.95, 0.98),
            },
            PairRow {
                item_a: "The Silence of the Lambs",
                item_b: "Inception",
                truth: (0.90, 0.86, 0.92, 0.98),
            },
            PairRow {
                item_a: "Fight Club",
                item_b: "Se7en",
                truth: (0.84, 0.89, 0.89, 0.95),
            },
        ],
        Dataset::LastFm => Vec::new(), // no inform signal (§7.3)
    }
}

/// The pair rows for any source: the paper's selections for the synthetic
/// stand-ins, and a single registry-GAP pair for loaded on-disk datasets
/// (whose true item catalogues we do not have).
pub fn pairs_for_source(source: &DataSource) -> Vec<PairRow> {
    match source.synthetic() {
        Some(d) => pairs_for(d),
        None => {
            let gap = source.gap();
            vec![PairRow {
                item_a: "item-A (registry GAP preset)",
                item_b: "item-B (registry GAP preset)",
                truth: (gap.q_a0, gap.q_ab, gap.q_b0, gap.q_ba),
            }]
        }
    }
}

/// Regenerate one of Tables 5–7 for `source`.
pub fn run(scale: &Scale, source: &DataSource) -> String {
    let table_no = match source.synthetic() {
        Some(Dataset::Flixster) => "5".to_string(),
        Some(Dataset::DoubanBook) => "6".to_string(),
        Some(Dataset::DoubanMovie) => "7".to_string(),
        Some(Dataset::LastFm) => {
            return "Last.fm has no informing signal; the paper uses synthetic GAPs (§7.3).\n"
                .to_string()
        }
        None => "5-7".to_string(),
    };
    let mut t = Table::new(format!(
        "Table {table_no} — learned GAPs on {} (synthetic logs, truth = paper's values)",
        source.name()
    ))
    .header(&[
        "A",
        "B",
        "q_A|0 (truth)",
        "q_A|B (truth)",
        "q_B|0 (truth)",
        "q_B|A (truth)",
        "covered",
    ]);
    // A small diffusion substrate is plenty for log generation.
    let g = source.graph((scale.size_factor * 0.25).max(0.01));
    let sessions = (400.0 * scale.size_factor.max(0.05) * 8.0) as usize;
    for (i, pair) in pairs_for_source(source).into_iter().enumerate() {
        let truth = Gap::new(pair.truth.0, pair.truth.1, pair.truth.2, pair.truth.3)
            .expect("paper GAPs are valid");
        let mut rng = SmallRng::seed_from_u64(scale.seed + i as u64);
        let log = synthesize_pair_log(
            &g,
            truth,
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions,
                seeds_per_item: 3,
                fresh_cohorts: true,
            },
            &mut rng,
        );
        match learn_gaps_with(
            &log,
            ItemId(0),
            ItemId(1),
            &GapLearnConfig {
                threads: scale.threads,
            },
        ) {
            Ok(l) => {
                let covered = [
                    l.q_a0.covers(truth.q_a0),
                    l.q_ab.covers(truth.q_ab),
                    l.q_b0.covers(truth.q_b0),
                    l.q_ba.covers(truth.q_ba),
                ]
                .iter()
                .filter(|&&c| c)
                .count();
                t.row(vec![
                    pair.item_a.to_string(),
                    pair.item_b.to_string(),
                    format!(
                        "{} ({:.2})",
                        pm(l.q_a0.value, l.q_a0.ci_half_width),
                        truth.q_a0
                    ),
                    format!(
                        "{} ({:.2})",
                        pm(l.q_ab.value, l.q_ab.ci_half_width),
                        truth.q_ab
                    ),
                    format!(
                        "{} ({:.2})",
                        pm(l.q_b0.value, l.q_b0.ci_half_width),
                        truth.q_b0
                    ),
                    format!(
                        "{} ({:.2})",
                        pm(l.q_ba.value, l.q_ba.ci_half_width),
                        truth.q_ba
                    ),
                    format!("{covered}/4"),
                ]);
            }
            Err(e) => {
                t.row(vec![
                    pair.item_a.to_string(),
                    pair.item_b.to_string(),
                    format!("insufficient data: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    "0/4".into(),
                ]);
            }
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flixster_table_renders_with_learned_values() {
        let scale = Scale {
            size_factor: 0.05,
            ..Scale::default()
        };
        let out = run(&scale, &DataSource::Synthetic(Dataset::Flixster));
        assert!(out.contains("Monster Inc."));
        assert!(out.contains("±"));
    }

    #[test]
    fn lastfm_is_explained_away() {
        let out = run(&Scale::default(), &DataSource::Synthetic(Dataset::LastFm));
        assert!(out.contains("no informing signal"));
    }
}
