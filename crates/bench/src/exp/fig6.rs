//! Figure 6 — CompInfMax boost in A-spread as a function of |S_B| for
//! GeneralTIM (RR-CIM) vs HighDegree / PageRank / Random, per dataset,
//! with the σ_A(S_A, ∅) anchor the paper reports in each subcaption.

use crate::datasets::DataSource;
use crate::exp::common::{boost, sigma_a, OppositeMode};
use crate::report::Table;
use crate::Scale;
use comic_algos::baselines::{high_degree, random_nodes};
use comic_algos::pagerank::{pagerank_top_k, PageRankConfig};
use comic_algos::CompInfMax;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Regenerate Figure 6's series on one source.
pub fn run(scale: &Scale, source: &DataSource) -> String {
    let g = source.graph(scale.size_factor);
    let gap = source.gap();
    let a_seeds = OppositeMode::Ranks101To200.seeds(&g, 100, scale.seed);
    let mut rng = SmallRng::seed_from_u64(scale.seed ^ 6);

    let anchor = sigma_a(&g, gap, &a_seeds, &[], scale.mc_iterations, 19);

    let mut solver = CompInfMax::new(&g, gap, a_seeds.clone())
        .eval_iterations(scale.mc_iterations)
        .threads(scale.threads)
        .selector(scale.selector)
        .epsilon(0.5);
    if let Some(cap) = scale.max_rr_sets {
        solver = solver.max_rr_sets(cap);
    }
    let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");
    let hd = high_degree(&g, scale.k);
    let pr = pagerank_top_k(&g, scale.k, &PageRankConfig::default());
    let rnd = random_nodes(&g, scale.k, &mut rng);

    let mut t = Table::new(format!(
        "Figure 6 — boost vs |S_B| on {} (sigma_A(S_A, {{}}) = {anchor:.0})",
        source.name()
    ))
    .header(&["|S_B|", "RR-CIM", "HighDegree", "PageRank", "Random"]);
    let budgets: Vec<usize> = [
        1usize,
        scale.k / 5,
        2 * scale.k / 5,
        3 * scale.k / 5,
        4 * scale.k / 5,
        scale.k,
    ]
    .into_iter()
    .filter(|&b| b >= 1)
    .collect();
    for &b in &budgets {
        let eval = |s: &[comic_graph::NodeId]| {
            boost(
                &g,
                gap,
                &a_seeds,
                &s[..b.min(s.len())],
                scale.mc_iterations,
                23,
            )
        };
        t.row(vec![
            b.to_string(),
            format!("{:.1}", eval(&sol.seeds)),
            format!("{:.1}", eval(&hd)),
            format!("{:.1}", eval(&pr)),
            format!("{:.1}", eval(&rnd)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_runs_tiny() {
        let scale = Scale {
            size_factor: 0.02,
            mc_iterations: 300,
            k: 5,
            max_rr_sets: Some(20_000),
            seed: 4,
            threads: 1,
            ..Scale::default()
        };
        let out = run(
            &scale,
            &DataSource::Synthetic(crate::datasets::Dataset::LastFm),
        );
        assert!(out.contains("RR-CIM"));
        assert!(out.contains("sigma_A"));
    }
}
