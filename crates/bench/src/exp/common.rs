//! Shared plumbing for the experiment drivers.

use comic_algos::baselines::vanilla_ic_ranking;
use comic_core::seeds::SeedPair;
use comic_core::spread::SpreadEstimator;
use comic_core::Gap;
use comic_graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How the *opposite* item's seed set is chosen (Tables 2–4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OppositeMode {
    /// VanillaIC's greedy ranks 101–200 (Table 2): moderately influential.
    Ranks101To200,
    /// 100 uniform random nodes (Table 3): no knowledge.
    Random100,
    /// VanillaIC's top-100 (Table 4): highly influential.
    Top100,
}

impl OppositeMode {
    /// Short label for table titles.
    pub fn label(self) -> &'static str {
        match self {
            OppositeMode::Ranks101To200 => "VanillaIC ranks 101-200",
            OppositeMode::Random100 => "100 random nodes",
            OppositeMode::Top100 => "VanillaIC top-100",
        }
    }

    /// Materialize the opposite seed set on `g`. `count` seeds are produced
    /// (the paper uses 100; scaled runs may use fewer on small graphs).
    pub fn seeds(self, g: &DiGraph, count: usize, seed: u64) -> Vec<NodeId> {
        let count = count.min(g.num_nodes() / 4).max(1);
        match self {
            OppositeMode::Random100 => {
                let mut rng = SmallRng::seed_from_u64(seed);
                comic_algos::baselines::random_nodes(g, count, &mut rng)
            }
            // Both VanillaIC modes slice the same 2·count ranking so that
            // "top-100" and "ranks 101–200" are disjoint by construction.
            OppositeMode::Top100 => {
                let ranking =
                    vanilla_ic_ranking(g, 2 * count, 0.5, seed).expect("vanilla ranking succeeds");
                ranking[..count].to_vec()
            }
            OppositeMode::Ranks101To200 => {
                let ranking =
                    vanilla_ic_ranking(g, 2 * count, 0.5, seed).expect("vanilla ranking succeeds");
                ranking[count..].to_vec()
            }
        }
    }
}

/// MC estimate of `σ_A(S_A, S_B)`.
pub fn sigma_a(g: &DiGraph, gap: Gap, sa: &[NodeId], sb: &[NodeId], mc: usize, seed: u64) -> f64 {
    SpreadEstimator::new(g, gap)
        .estimate_parallel(&SeedPair::new(sa.to_vec(), sb.to_vec()), mc, seed, 0)
        .sigma_a
}

/// MC estimate of the CompInfMax boost.
pub fn boost(g: &DiGraph, gap: Gap, sa: &[NodeId], sb: &[NodeId], mc: usize, seed: u64) -> f64 {
    SpreadEstimator::new(g, gap).estimate_boost(
        &SeedPair::new(sa.to_vec(), sb.to_vec()),
        mc,
        seed,
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_graph::gen;

    #[test]
    fn opposite_modes_produce_requested_counts() {
        let g = gen::star(400, 0.5);
        for mode in [
            OppositeMode::Random100,
            OppositeMode::Top100,
            OppositeMode::Ranks101To200,
        ] {
            let s = mode.seeds(&g, 40, 7);
            assert_eq!(s.len(), 40, "{mode:?}");
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 40, "{mode:?} duplicated seeds");
        }
    }

    #[test]
    fn ranks_and_top_are_disjoint() {
        let g = gen::star(400, 0.5);
        let top = OppositeMode::Top100.seeds(&g, 30, 7);
        let mid = OppositeMode::Ranks101To200.seeds(&g, 30, 7);
        assert!(top.iter().all(|v| !mid.contains(v)));
    }
}
