//! Figure 7 — running time: (a) RR-set algorithms vs Monte-Carlo Greedy on
//! the four datasets; (b) scalability of the samplers on power-law graphs
//! of growing size (exponent 2.16, average degree ≈ 5).
//!
//! Absolute numbers are machine-specific; the shape to reproduce is
//! *Greedy slower than the RR algorithms by orders of magnitude*,
//! *RR-SIM+ at least as fast as RR-SIM*, and *near-linear growth* in (b).

use crate::datasets::{scalability_series, DataSource, Dataset};
use crate::exp::common::OppositeMode;
use crate::report::Table;
use crate::runtime::{fmt_secs, timed};
use crate::Scale;
use comic_algos::greedy::{greedy_comp_inf_max, greedy_self_inf_max, GreedyConfig};
use comic_algos::{RrCimSampler, RrSimPlusSampler, RrSimSampler};
use comic_core::Gap;
use comic_ris::tim::{general_tim_with, TimConfig};

/// Figure 7(a): per-dataset running times. Greedy runs with a reduced
/// budget (`greedy_k`, `greedy_mc`) — even so it dominates the wall clock,
/// which is the point.
pub fn run_times(
    scale: &Scale,
    sources: &[DataSource],
    greedy_k: usize,
    greedy_mc: usize,
) -> String {
    let mut t = Table::new(format!(
        "Figure 7a — seed-selection time, k={} (Greedy at k={greedy_k}, {greedy_mc} MC)",
        scale.k
    ))
    .header(&[
        "dataset",
        "Greedy(SIM)",
        "RR-SIM",
        "RR-SIM+",
        "Greedy(CIM)",
        "RR-CIM",
    ]);
    for d in sources {
        let g = d.graph(scale.size_factor);
        let lg = d.gap();
        let gap_sim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, lg.q_b0).unwrap();
        let gap_cim = Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, 1.0).unwrap();
        let opposite = OppositeMode::Ranks101To200.seeds(&g, 100, scale.seed);
        let mk_cfg = |seed: u64| {
            let mut cfg = TimConfig::new(scale.k).epsilon(0.5).seed(seed);
            cfg.max_rr_sets = scale.max_rr_sets;
            cfg.threads = scale.threads;
            cfg.selector = scale.selector;
            cfg
        };
        let gcfg = GreedyConfig {
            mc_iterations: greedy_mc,
            seed: scale.seed,
            threads: scale.threads,
        };
        let (_, greedy_sim_t) =
            timed(|| greedy_self_inf_max(&g, gap_sim, &opposite, greedy_k, &gcfg));
        let (_, rr_sim_t) = timed(|| {
            general_tim_with(
                || RrSimSampler::new(&g, gap_sim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        let (_, rr_plus_t) = timed(|| {
            general_tim_with(
                || RrSimPlusSampler::new(&g, gap_sim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        let (_, greedy_cim_t) =
            timed(|| greedy_comp_inf_max(&g, gap_cim, &opposite, greedy_k, &gcfg));
        let (_, rr_cim_t) = timed(|| {
            general_tim_with(
                || RrCimSampler::new(&g, gap_cim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        t.row(vec![
            d.name(),
            fmt_secs(greedy_sim_t),
            fmt_secs(rr_sim_t),
            fmt_secs(rr_plus_t),
            fmt_secs(greedy_cim_t),
            fmt_secs(rr_cim_t),
        ]);
    }
    t.render()
}

/// Figure 7(b): scalability of the three samplers over a size series.
pub fn run_scalability(scale: &Scale, sizes: &[usize]) -> String {
    let gap = Dataset::Flixster.learned_gap(); // "we use the GAPs from Flixster"
    let gap_sim = Gap::new(gap.q_a0, gap.q_ab, gap.q_b0, gap.q_b0).unwrap();
    let gap_cim = Gap::new(gap.q_a0, gap.q_ab, gap.q_b0, 1.0).unwrap();
    let mut t = Table::new("Figure 7b — scalability on power-law graphs (gamma = 2.16)")
        .header(&["nodes", "edges", "RR-SIM", "RR-SIM+", "RR-CIM"]);
    for (n, g) in scalability_series(sizes) {
        let opposite = OppositeMode::Random100.seeds(&g, 100, scale.seed);
        let mk_cfg = |seed: u64| {
            let mut cfg = TimConfig::new(scale.k).epsilon(0.5).seed(seed);
            cfg.max_rr_sets = scale.max_rr_sets;
            cfg.threads = scale.threads;
            cfg.selector = scale.selector;
            cfg
        };
        let (_, sim_t) = timed(|| {
            general_tim_with(
                || RrSimSampler::new(&g, gap_sim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        let (_, plus_t) = timed(|| {
            general_tim_with(
                || RrSimPlusSampler::new(&g, gap_sim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        let (_, cim_t) = timed(|| {
            general_tim_with(
                || RrCimSampler::new(&g, gap_cim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        t.row(vec![
            n.to_string(),
            g.num_edges().to_string(),
            fmt_secs(sim_t),
            fmt_secs(plus_t),
            fmt_secs(cim_t),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_run_tiny() {
        let scale = Scale {
            size_factor: 0.02,
            mc_iterations: 200,
            k: 3,
            max_rr_sets: Some(10_000),
            seed: 5,
            threads: 1,
            ..Scale::default()
        };
        let out = run_times(&scale, &[DataSource::Synthetic(Dataset::Flixster)], 1, 100);
        assert!(out.contains("Greedy(SIM)"));
    }

    #[test]
    fn scalability_runs_tiny() {
        let scale = Scale {
            size_factor: 1.0,
            mc_iterations: 200,
            k: 3,
            max_rr_sets: Some(10_000),
            seed: 6,
            threads: 1,
            ..Scale::default()
        };
        let out = run_scalability(&scale, &[500, 1000]);
        assert!(out.contains("1000"));
    }
}
