//! Tables 2–4 — percentage improvement of GeneralTIM over the VanillaIC and
//! Copying baselines, for both problems, under three choices of the
//! opposite item's seed set.
//!
//! Parameters follow §7.1: SelfInfMax uses `q_{A|B} = q_{B|A} = 0.75`,
//! `q_{B|∅} = 0.5`, `q_{A|∅} ∈ {0.1, 0.3, 0.5}`; CompInfMax uses
//! `q_{A|∅} = 0.1`, `q_{A|B} = q_{B|A} = 0.9`, `q_{B|∅} ∈ {0.1, 0.5, 0.8}`.

use crate::datasets::DataSource;
use crate::exp::common::{boost, sigma_a, OppositeMode};
use crate::report::{pct_improvement, Table};
use crate::Scale;
use comic_algos::baselines::{copying, vanilla_ic_ranking};
use comic_algos::{CompInfMax, SelfInfMax};
use comic_core::Gap;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Run the Tables 2/3/4 experiment for the given opposite-seed mode.
pub fn run(scale: &Scale, mode: OppositeMode, sources: &[DataSource]) -> String {
    let table_no = match mode {
        OppositeMode::Ranks101To200 => 2,
        OppositeMode::Random100 => 3,
        OppositeMode::Top100 => 4,
    };
    let mut out = String::new();

    // --- SelfInfMax half. ---
    let mut t = Table::new(format!(
        "Table {table_no} (SelfInfMax) — improvement of GeneralTIM over baselines; \
         B-seeds = {}",
        mode.label()
    ))
    .header(&[
        "dataset",
        "q_A|0",
        "TIM sigma_A",
        "vs VanillaIC",
        "vs Copying",
    ]);
    for src in sources {
        let g = src.graph(scale.size_factor);
        let opposite = mode.seeds(&g, 100, scale.seed);
        for (qi, q_a0) in [0.1, 0.3, 0.5].into_iter().enumerate() {
            let gap = Gap::new(q_a0, 0.75, 0.5, 0.75).unwrap();
            let mut rng = SmallRng::seed_from_u64(scale.seed + qi as u64);
            let mut solver = SelfInfMax::new(&g, gap, opposite.clone())
                .eval_iterations(scale.mc_iterations)
                .threads(scale.threads)
                .selector(scale.selector)
                .epsilon(0.5);
            if let Some(cap) = scale.max_rr_sets {
                solver = solver.max_rr_sets(cap);
            }
            let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");

            let vic = vanilla_ic_ranking(&g, scale.k, 0.5, scale.seed ^ 0xFF)
                .expect("vanilla ranking succeeds");
            let vic_sigma = sigma_a(&g, gap, &vic, &opposite, scale.mc_iterations, 3);
            let copy_seeds = copying(&g, &opposite, scale.k);
            let copy_sigma = sigma_a(&g, gap, &copy_seeds, &opposite, scale.mc_iterations, 3);

            t.row(vec![
                src.name(),
                format!("{q_a0}"),
                format!("{:.0}", sol.objective),
                pct_improvement(sol.objective, vic_sigma),
                pct_improvement(sol.objective, copy_sigma),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');

    // --- CompInfMax half. ---
    let mut t = Table::new(format!(
        "Table {table_no} (CompInfMax) — improvement of GeneralTIM over baselines; \
         A-seeds = {}",
        mode.label()
    ))
    .header(&[
        "dataset",
        "q_B|0",
        "TIM boost",
        "vs VanillaIC",
        "vs Copying",
    ]);
    for src in sources {
        let g = src.graph(scale.size_factor);
        let a_seeds = mode.seeds(&g, 100, scale.seed);
        for (qi, q_b0) in [0.1, 0.5, 0.8].into_iter().enumerate() {
            let gap = Gap::new(0.1, 0.9, q_b0, 0.9).unwrap();
            let mut rng = SmallRng::seed_from_u64(scale.seed + 100 + qi as u64);
            let mut solver = CompInfMax::new(&g, gap, a_seeds.clone())
                .eval_iterations(scale.mc_iterations)
                .threads(scale.threads)
                .selector(scale.selector)
                .epsilon(0.5);
            if let Some(cap) = scale.max_rr_sets {
                solver = solver.max_rr_sets(cap);
            }
            let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");

            let vic = vanilla_ic_ranking(&g, scale.k, 0.5, scale.seed ^ 0xFF)
                .expect("vanilla ranking succeeds");
            let vic_boost = boost(&g, gap, &a_seeds, &vic, scale.mc_iterations, 5);
            let copy_seeds = copying(&g, &a_seeds, scale.k);
            let copy_boost = boost(&g, gap, &a_seeds, &copy_seeds, scale.mc_iterations, 5);

            t.row(vec![
                src.name(),
                format!("{q_b0}"),
                format!("{:.1}", sol.objective),
                pct_improvement(sol.objective, vic_boost),
                pct_improvement(sol.objective, copy_boost),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke test at a tiny scale on one dataset.
    #[test]
    fn runs_at_tiny_scale() {
        let scale = Scale {
            size_factor: 0.02,
            mc_iterations: 500,
            k: 5,
            max_rr_sets: Some(50_000),
            seed: 1,
            threads: 1,
            ..Scale::default()
        };
        let out = run(
            &scale,
            OppositeMode::Random100,
            &[DataSource::Synthetic(crate::datasets::Dataset::Flixster)],
        );
        assert!(out.contains("SelfInfMax"));
        assert!(out.contains("CompInfMax"));
        assert!(out.contains("Flixster"));
    }
}
