//! Table 8 — the observable sandwich factor `σ(S_ν)/ν(S_ν)` under learned
//! GAPs and under the paper's adversarial "stress-test" GAPs.
//!
//! Stress settings (§7.3): `q_{A|∅} = 0.3`, `q_{A|B} = 0.8`; for
//! SelfInfMax fix `q_{B|A} = 1` and vary `q_{B|∅} ∈ {0.1, 0.5, 0.9}`; for
//! CompInfMax fix `q_{B|∅} = 0.1` and vary `q_{B|A} ∈ {0.1, 0.5, 0.9}`.

use crate::datasets::DataSource;
use crate::exp::common::OppositeMode;
use crate::report::Table;
use crate::Scale;
use comic_algos::{CompInfMax, SelfInfMax};
use comic_core::Gap;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn sim_ratio(scale: &Scale, g: &comic_graph::DiGraph, gap: Gap, seed: u64) -> f64 {
    let opposite = OppositeMode::Ranks101To200.seeds(g, 100, scale.seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut solver = SelfInfMax::new(g, gap, opposite)
        .eval_iterations(scale.mc_iterations)
        .threads(scale.threads)
        .selector(scale.selector)
        .epsilon(0.5);
    if let Some(cap) = scale.max_rr_sets {
        solver = solver.max_rr_sets(cap);
    }
    let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");
    sol.sandwich.map(|r| r.upper_bound_ratio).unwrap_or(1.0) // direct regime: σ = ν exactly
}

fn cim_ratio(scale: &Scale, g: &comic_graph::DiGraph, gap: Gap, seed: u64) -> f64 {
    let a_seeds = OppositeMode::Ranks101To200.seeds(g, 100, scale.seed);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut solver = CompInfMax::new(g, gap, a_seeds)
        .eval_iterations(scale.mc_iterations)
        .threads(scale.threads)
        .selector(scale.selector)
        .epsilon(0.5);
    if let Some(cap) = scale.max_rr_sets {
        solver = solver.max_rr_sets(cap);
    }
    let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");
    sol.sandwich.map(|r| r.upper_bound_ratio).unwrap_or(1.0)
}

/// Regenerate Table 8 for the given sources.
pub fn run(scale: &Scale, sources: &[DataSource]) -> String {
    let mut t = Table::new("Table 8 — sandwich approximation: sigma(S_nu)/nu(S_nu)".to_string())
        .header(
            &std::iter::once("setting".to_string())
                .chain(sources.iter().map(|s| s.name()))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
        );

    let graphs: Vec<_> = sources
        .iter()
        .map(|s| (s, s.graph(scale.size_factor)))
        .collect();

    // SIM rows: learned + stress q_{B|∅} ∈ {0.1, 0.5, 0.9} with q_{B|A} = 1.
    let mut row = vec!["SIM_learn".to_string()];
    for (d, g) in &graphs {
        let ratio = sim_ratio(scale, g, d.gap(), scale.seed + 1);
        row.push(format!("{ratio:.3}"));
    }
    t.row(row);
    for q_b0 in [0.1, 0.5, 0.9] {
        let gap = Gap::new(0.3, 0.8, q_b0, 1.0).unwrap();
        let mut row = vec![format!("SIM_{q_b0}")];
        for (_, g) in &graphs {
            row.push(format!("{:.3}", sim_ratio(scale, g, gap, scale.seed + 2)));
        }
        t.row(row);
    }
    // CIM rows: learned + stress q_{B|A} ∈ {0.1, 0.5, 0.9} with q_{B|∅} = 0.1.
    let mut row = vec!["CIM_learn".to_string()];
    for (d, g) in &graphs {
        row.push(format!(
            "{:.3}",
            cim_ratio(scale, g, d.gap(), scale.seed + 3)
        ));
    }
    t.row(row);
    for q_ba in [0.1, 0.5, 0.9] {
        // Maintain Q+ (q_{B|∅} ≤ q_{B|A}).
        let gap = Gap::new(0.3, 0.8, 0.1f64.min(q_ba), q_ba).unwrap();
        let mut row = vec![format!("CIM_{q_ba}")];
        for (_, g) in &graphs {
            row.push(format!("{:.3}", cim_ratio(scale, g, gap, scale.seed + 4)));
        }
        t.row(row);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_on_one_dataset_tiny() {
        let scale = Scale {
            size_factor: 0.02,
            mc_iterations: 400,
            k: 4,
            max_rr_sets: Some(30_000),
            seed: 5,
            threads: 1,
            ..Scale::default()
        };
        let out = run(
            &scale,
            &[DataSource::Synthetic(crate::datasets::Dataset::Flixster)],
        );
        assert!(out.contains("SIM_learn"));
        assert!(out.contains("CIM_0.9"));
    }
}
