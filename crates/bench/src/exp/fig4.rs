//! Figure 4 — the effect of ε on running time (orders of magnitude) and on
//! solution quality (nearly none), for RR-SIM, RR-SIM+ and RR-CIM.

use crate::datasets::DataSource;
use crate::exp::common::{boost, sigma_a, OppositeMode};
use crate::report::Table;
use crate::runtime::timed;
use crate::Scale;
use comic_algos::{RrCimSampler, RrSimPlusSampler, RrSimSampler};
use comic_core::Gap;
use comic_ris::tim::{general_tim_with, TimConfig};

/// Regenerate Figure 4's series on one source.
pub fn run(scale: &Scale, source: &DataSource) -> String {
    let g = source.graph(scale.size_factor);
    let gap_sim = {
        // One-way projection of the learned GAPs so all three samplers run
        // in their direct regimes across the ε sweep.
        let lg = source.gap();
        Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, lg.q_b0).unwrap()
    };
    let gap_cim = {
        let lg = source.gap();
        Gap::new(lg.q_a0, lg.q_ab, lg.q_b0, 1.0).unwrap()
    };
    let opposite = OppositeMode::Ranks101To200.seeds(&g, 100, scale.seed);

    let mut t = Table::new(format!("Figure 4 — epsilon sweep on {}", source.name())).header(&[
        "eps",
        "RR-SIM time",
        "RR-SIM+ time",
        "RR-CIM time",
        "SIM spread",
        "CIM boost",
    ]);

    for eps in [0.1, 0.3, 0.5, 0.7, 1.0] {
        let mk_cfg = |seed: u64| {
            let mut cfg = TimConfig::new(scale.k).epsilon(eps).seed(seed);
            cfg.max_rr_sets = scale.max_rr_sets;
            cfg.threads = scale.threads;
            cfg.selector = scale.selector;
            cfg
        };
        let (sim_res, sim_t) = timed(|| {
            general_tim_with(
                || RrSimSampler::new(&g, gap_sim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        let (plus_res, plus_t) = timed(|| {
            general_tim_with(
                || RrSimPlusSampler::new(&g, gap_sim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        let (cim_res, cim_t) = timed(|| {
            general_tim_with(
                || RrCimSampler::new(&g, gap_cim, opposite.clone()).unwrap(),
                &mk_cfg(scale.seed),
            )
            .unwrap()
        });
        let spread = sigma_a(
            &g,
            gap_sim,
            &plus_res.seeds,
            &opposite,
            scale.mc_iterations,
            11,
        );
        let cim_boost = boost(
            &g,
            gap_cim,
            &opposite,
            &cim_res.seeds,
            scale.mc_iterations,
            13,
        );
        let _ = sim_res;
        t.row(vec![
            format!("{eps}"),
            format!("{sim_t:.2}s"),
            format!("{plus_t:.2}s"),
            format!("{cim_t:.2}s"),
            format!("{spread:.0}"),
            format!("{cim_boost:.1}"),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_tiny() {
        let scale = Scale {
            size_factor: 0.02,
            mc_iterations: 300,
            k: 3,
            max_rr_sets: Some(20_000),
            seed: 2,
            threads: 1,
            ..Scale::default()
        };
        let out = run(
            &scale,
            &DataSource::Synthetic(crate::datasets::Dataset::Flixster),
        );
        assert!(out.contains("eps"));
        assert!(out.lines().count() >= 7);
    }
}
