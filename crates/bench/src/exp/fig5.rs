//! Figure 5 — SelfInfMax A-spread as a function of |S_A| for GeneralTIM
//! (RR) vs HighDegree / PageRank / Random, per dataset.

use crate::datasets::DataSource;
use crate::exp::common::{sigma_a, OppositeMode};
use crate::report::Table;
use crate::Scale;
use comic_algos::baselines::{high_degree, random_nodes};
use comic_algos::pagerank::{pagerank_top_k, PageRankConfig};
use comic_algos::SelfInfMax;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Regenerate Figure 5's series on one source.
pub fn run(scale: &Scale, source: &DataSource) -> String {
    let g = source.graph(scale.size_factor);
    let gap = source.gap();
    let opposite = OppositeMode::Ranks101To200.seeds(&g, 100, scale.seed);
    let mut rng = SmallRng::seed_from_u64(scale.seed);

    // Solve once at the largest budget; prefixes give the whole curve
    // (greedy pick order is nested).
    let mut solver = SelfInfMax::new(&g, gap, opposite.clone())
        .eval_iterations(scale.mc_iterations)
        .threads(scale.threads)
        .selector(scale.selector)
        .epsilon(0.5);
    if let Some(cap) = scale.max_rr_sets {
        solver = solver.max_rr_sets(cap);
    }
    let sol = solver.solve(scale.k, &mut rng).expect("Q+ solves");
    let hd = high_degree(&g, scale.k);
    let pr = pagerank_top_k(&g, scale.k, &PageRankConfig::default());
    let rnd = random_nodes(&g, scale.k, &mut rng);

    let mut t = Table::new(format!(
        "Figure 5 — A-spread vs |S_A| on {} (B-seeds = VanillaIC ranks 101-200)",
        source.name()
    ))
    .header(&["|S_A|", "RR", "HighDegree", "PageRank", "Random"]);
    let budgets: Vec<usize> = [
        1usize,
        scale.k / 5,
        2 * scale.k / 5,
        3 * scale.k / 5,
        4 * scale.k / 5,
        scale.k,
    ]
    .into_iter()
    .filter(|&b| b >= 1)
    .collect();
    for &b in &budgets {
        let eval = |s: &[comic_graph::NodeId]| {
            sigma_a(
                &g,
                gap,
                &s[..b.min(s.len())],
                &opposite,
                scale.mc_iterations,
                17,
            )
        };
        t.row(vec![
            b.to_string(),
            format!("{:.0}", eval(&sol.seeds)),
            format!("{:.0}", eval(&hd)),
            format!("{:.0}", eval(&pr)),
            format!("{:.0}", eval(&rnd)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_runs_tiny() {
        let scale = Scale {
            size_factor: 0.02,
            mc_iterations: 300,
            k: 5,
            max_rr_sets: Some(20_000),
            seed: 3,
            threads: 1,
            ..Scale::default()
        };
        let out = run(
            &scale,
            &DataSource::Synthetic(crate::datasets::Dataset::DoubanBook),
        );
        assert!(out.contains("HighDegree"));
        assert!(out.contains("Random"));
    }
}
