//! Wall-clock measurement helpers for the experiment drivers.

use std::time::Instant;

/// Run `f`, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Human-readable duration (`1.23s`, `4m05s`).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 120.0 {
        format!("{secs:.2}s")
    } else {
        let m = (secs / 60.0).floor() as u64;
        format!("{m}m{:02.0}s", secs - 60.0 * m as f64)
    }
}

/// Render a bench snapshot as JSON: the shared shape of the committed
/// `BENCH_*.json` files — top-level `bench` name, header fields, then a
/// `runs` array of flat objects. Values are **pre-rendered JSON fragments**
/// (strings must arrive quoted, nested objects as `{ .. }` literals), so
/// the caller controls formatting and this stays a dumb assembler.
pub fn render_json_snapshot(
    bench: &str,
    header: &[(&str, String)],
    runs: &[Vec<(&str, String)>],
) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bench\": \"{bench}\",\n"));
    for (k, v) in header {
        json.push_str(&format!("  \"{k}\": {v},\n"));
    }
    json.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let fields: Vec<String> = run.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        json.push_str(&format!(
            "    {{ {} }}{}\n",
            fields.join(", "),
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    json
}

/// Write a snapshot to the path in `COMIC_BENCH_JSON`, if set — the shared
/// epilogue of the `rr_generation` and `seed_selection` bench sections.
pub fn write_json_snapshot(bench: &str, header: &[(&str, String)], runs: &[Vec<(&str, String)>]) {
    let Ok(path) = std::env::var("COMIC_BENCH_JSON") else {
        return;
    };
    let json = render_json_snapshot(bench, header, runs);
    std::fs::write(&path, json).expect("write COMIC_BENCH_JSON snapshot");
    println!("bench: {bench} snapshot written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_and_returns() {
        let (v, secs) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            7
        });
        assert_eq!(v, 7);
        assert!(secs >= 0.018, "measured {secs}");
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(1.234), "1.23s");
        assert_eq!(fmt_secs(125.0), "2m05s");
    }

    #[test]
    fn snapshot_renders_headers_runs_and_commas() {
        let json = render_json_snapshot(
            "demo",
            &[("host_cores", "4".into()), ("note", "\"hi\"".into())],
            &[
                vec![("label", "\"a\"".into()), ("secs", "0.5000".into())],
                vec![("label", "\"b\"".into()), ("secs", "1.2500".into())],
            ],
        );
        assert!(json.starts_with("{\n  \"bench\": \"demo\",\n"));
        assert!(json.contains("  \"host_cores\": 4,\n"));
        assert!(json.contains("    { \"label\": \"a\", \"secs\": 0.5000 },\n"));
        assert!(json.contains("    { \"label\": \"b\", \"secs\": 1.2500 }\n"));
        assert!(json.ends_with("  ]\n}\n"));
        // No trailing comma after the last run.
        assert!(!json.contains("1.2500 },"));
    }
}
