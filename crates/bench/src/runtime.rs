//! Wall-clock measurement helpers for the experiment drivers.

use std::time::Instant;

/// Run `f`, returning its result and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Human-readable duration (`1.23s`, `4m05s`).
pub fn fmt_secs(secs: f64) -> String {
    if secs < 120.0 {
        format!("{secs:.2}s")
    } else {
        let m = (secs / 60.0).floor() as u64;
        format!("{m}m{:02.0}s", secs - 60.0 * m as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_and_returns() {
        let (v, secs) = timed(|| {
            std::thread::sleep(std::time::Duration::from_millis(20));
            7
        });
        assert_eq!(v, 7);
        assert!(secs >= 0.018, "measured {secs}");
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_secs(1.234), "1.23s");
        assert_eq!(fmt_secs(125.0), "2m05s");
    }
}
