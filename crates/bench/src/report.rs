//! Plain-text table and series rendering shaped like the paper's output.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title (e.g. `"Table 2 — SelfInfMax"`).
    pub fn new(title: impl Into<String>) -> Table {
        Table {
            title: title.into(),
            ..Table::default()
        }
    }

    /// Set the header row.
    pub fn header(mut self, cols: &[&str]) -> Table {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a data row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        self.rows.push(cells);
        self
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let ncols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header));
            let _ = writeln!(
                out,
                "{}",
                widths
                    .iter()
                    .map(|w| "-".repeat(*w))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
        }
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r));
        }
        out
    }

    /// Render as CSV (for downstream plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        if !self.header.is_empty() {
            let _ = writeln!(
                out,
                "{}",
                self.header
                    .iter()
                    .map(|c| esc(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a percentage improvement `new vs base` the way the paper's
/// Tables 2–4 do.
pub fn pct_improvement(new: f64, base: f64) -> String {
    if base.abs() < 1e-9 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", 100.0 * (new - base) / base)
}

/// Format `value ± half_width` like the paper's Tables 5–7.
pub fn pm(value: f64, half_width: f64) -> String {
    format!("{value:.2} ± {half_width:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T").header(&["a", "long-col"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("long-col"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("T").header(&["x,y", "z"]);
        t.row(vec!["a\"b".into(), "c".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"a\"\"b\""));
    }

    #[test]
    fn helpers() {
        assert_eq!(pct_improvement(120.0, 100.0), "+20.0%");
        assert_eq!(pct_improvement(80.0, 100.0), "-20.0%");
        assert_eq!(pct_improvement(1.0, 0.0), "n/a");
        assert_eq!(pm(0.876, 0.012), "0.88 ± 0.01");
    }
}
