//! The thread-count-invariance test harness: one enforced API for the
//! workspace's determinism contract.
//!
//! Every parallel subsystem in the repo promises one of two things:
//!
//! 1. **Thread-count invariance** — the output is byte-identical for every
//!    worker count at a fixed seed. This is the contract of the learning
//!    layer (`comic_actionlog::{learn_influence, learn_gaps_with}`), the
//!    parallel generators (`comic_graph::gen::par`), and the seed-selection
//!    engine (`comic_ris::select`: index builds and CELF sweeps). Checked
//!    by [`assert_thread_invariance`] / [`check_thread_invariance`].
//! 2. **Per-configuration reproducibility** — the output is byte-identical
//!    when the *same* `(seed, threads)` pair is run twice, though different
//!    thread counts legitimately produce different (equally distributed)
//!    samples. This is the contract of RR-set generation
//!    (`comic_ris::parallel::ShardedGenerator`) and spread estimation,
//!    where per-shard RNG streams are keyed by shard id and the shard count
//!    *is* the thread count. Checked by [`assert_reproducible`].
//!
//! Before this module each crate hand-rolled ad-hoc versions of these
//! assertions; the harness turns them into one API so a new parallel code
//! path gets the whole matrix (threads ∈ {1, 2, 4, 7} by default,
//! overridable via `COMIC_TEST_THREADS=1,4` for CI's thread-matrix step)
//! with two lines of test code. The subject under test is any
//! `Fn(threads) -> T` with `T: Hash + PartialEq`; results are compared
//! both structurally and by Fx digest, and the digests are reported so a
//! violation message pinpoints the diverging thread count.

use comic_graph::fasthash::FxHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The default worker-count matrix: sequential, even splits, and a prime
/// that exercises uneven shard remainders.
pub const DEFAULT_THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// The thread matrix in effect: `COMIC_TEST_THREADS` (a comma-separated
/// list, e.g. `1,4`) when set and parseable, [`DEFAULT_THREAD_COUNTS`]
/// otherwise. CI's thread-matrix step pins this so the same suite runs
/// under different matrices without recompiling.
pub fn thread_counts() -> Vec<usize> {
    match std::env::var("COMIC_TEST_THREADS") {
        Ok(raw) => parse_thread_counts(&raw),
        Err(_) => DEFAULT_THREAD_COUNTS.to_vec(),
    }
}

/// Parse a `COMIC_TEST_THREADS`-style matrix (`"1,4"`); an unparseable or
/// empty list falls back to [`DEFAULT_THREAD_COUNTS`]. Split out from
/// [`thread_counts`] so it is testable without mutating the process
/// environment (which would race parallel tests and strip CI's pin).
pub fn parse_thread_counts(raw: &str) -> Vec<usize> {
    let parsed: Vec<usize> = raw
        .split(',')
        .filter_map(|tok| tok.trim().parse().ok())
        .filter(|&t| t >= 1)
        .collect();
    if parsed.is_empty() {
        DEFAULT_THREAD_COUNTS.to_vec()
    } else {
        parsed
    }
}

/// Fx digest of any hashable value — the harness's comparison currency,
/// also handy for callers that want to log what a run produced.
pub fn digest<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// A passed check: which thread counts ran and the digest each produced
/// (all equal, by construction, for the invariance check).
#[derive(Clone, Debug)]
pub struct InvarianceReport {
    /// Label the caller gave the subject under test.
    pub label: String,
    /// `(threads, digest)` per run, in matrix order.
    pub digests: Vec<(usize, u64)>,
}

/// A failed check: the first thread count whose result diverged from the
/// baseline.
#[derive(Clone, Debug)]
pub struct InvarianceViolation {
    /// Label the caller gave the subject under test.
    pub label: String,
    /// Thread count of the baseline run (first in the matrix).
    pub baseline_threads: usize,
    /// Digest of the baseline result.
    pub baseline_digest: u64,
    /// First diverging thread count.
    pub offender_threads: usize,
    /// Digest of the diverging result.
    pub offender_digest: u64,
}

impl fmt::Display for InvarianceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: threads={} produced {:#018x}, but threads={} produced {:#018x} — \
             output depends on the worker count",
            self.label,
            self.baseline_threads,
            self.baseline_digest,
            self.offender_threads,
            self.offender_digest
        )
    }
}

impl std::error::Error for InvarianceViolation {}

/// Run `subject` once per entry of `threads` and verify every result is
/// identical (structurally via `PartialEq` and by Fx digest) to the first.
///
/// Returns the per-thread digests on success, the first divergence
/// otherwise. [`assert_thread_invariance`] is the panicking wrapper tests
/// want.
pub fn check_thread_invariance<T, F>(
    label: &str,
    threads: &[usize],
    subject: F,
) -> Result<InvarianceReport, InvarianceViolation>
where
    T: Hash + PartialEq,
    F: Fn(usize) -> T,
{
    assert!(!threads.is_empty(), "empty thread matrix for {label}");
    let baseline = subject(threads[0]);
    let baseline_digest = digest(&baseline);
    let mut digests = vec![(threads[0], baseline_digest)];
    for &t in &threads[1..] {
        let run = subject(t);
        let d = digest(&run);
        if run != baseline || d != baseline_digest {
            return Err(InvarianceViolation {
                label: label.to_string(),
                baseline_threads: threads[0],
                baseline_digest,
                offender_threads: t,
                offender_digest: d,
            });
        }
        digests.push((t, d));
    }
    Ok(InvarianceReport {
        label: label.to_string(),
        digests,
    })
}

/// [`check_thread_invariance`] over the ambient [`thread_counts`] matrix,
/// panicking with the violation message on divergence.
pub fn assert_thread_invariance<T, F>(label: &str, subject: F) -> InvarianceReport
where
    T: Hash + PartialEq,
    F: Fn(usize) -> T,
{
    match check_thread_invariance(label, &thread_counts(), subject) {
        Ok(report) => report,
        Err(v) => panic!("thread-count invariance violated — {v}"),
    }
}

/// The weaker contract for subsystems whose sample streams are keyed by
/// shard id (RR generation, spread estimation): for each thread count in
/// the ambient matrix, running `subject` twice must produce identical
/// results. Panics on the first non-reproducible configuration.
pub fn assert_reproducible<T, F>(label: &str, subject: F) -> InvarianceReport
where
    T: Hash + PartialEq,
    F: Fn(usize) -> T,
{
    let mut digests = Vec::new();
    for t in thread_counts() {
        let first = subject(t);
        let again = subject(t);
        let (d1, d2) = (digest(&first), digest(&again));
        assert!(
            first == again && d1 == d2,
            "{label}: two runs at threads={t} disagree ({d1:#018x} vs {d2:#018x}) — \
             the (seed, threads) reproducibility contract is broken"
        );
        digests.push((t, d1));
    }
    InvarianceReport {
        label: label.to_string(),
        digests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comic_actionlog::synth::{synthesize_pair_log, SynthConfig};
    use comic_actionlog::{
        learn_gaps_with, learn_influence, GapLearnConfig, InfluenceLearnConfig, ItemId,
    };
    use comic_core::gap::Gap;
    use comic_graph::gen::{self, ParGen};
    use comic_graph::io::graph_digest;
    use comic_graph::prob::ProbModel;
    use comic_ris::ic_sampler::IcRrSampler;
    use comic_ris::parallel::ShardedGenerator;
    use comic_ris::select::{CelfGreedy, CoverageFragment, CoverageIndex, SeedSelector};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph(n: usize, m: usize, seed: u64) -> comic_graph::DiGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = gen::gnm(n, m, &mut rng).unwrap();
        ProbModel::Constant(0.3).apply(&topo, &mut rng)
    }

    #[test]
    fn harness_passes_an_invariant_subject_and_reports_digests() {
        let counts = thread_counts();
        let report = assert_thread_invariance("sum", |t| {
            // Thread count changes scheduling, not the value.
            comic_graph::par::run_sharded(10, t, |i| i as u64)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(report.digests.len(), counts.len());
        assert!(report.digests.windows(2).all(|w| w[0].1 == w[1].1));
        assert_eq!(report.label, "sum");
    }

    #[test]
    fn harness_catches_a_thread_dependent_subject() {
        let err = check_thread_invariance("leaky", &[1, 2, 4], |t| t * 100)
            .expect_err("a thread-dependent result must be flagged");
        assert_eq!(err.baseline_threads, 1);
        assert_eq!(err.offender_threads, 2);
        let msg = err.to_string();
        assert!(msg.contains("leaky"), "{msg}");
        assert!(msg.contains("threads=2"), "{msg}");
    }

    #[test]
    fn env_override_shapes_the_matrix() {
        // The env var itself is CI's to set (and process-global, so tests
        // must not mutate it); the parser carries the whole contract.
        assert_eq!(parse_thread_counts("1, 3,9"), vec![1, 3, 9]);
        assert_eq!(parse_thread_counts("4"), vec![4]);
        assert_eq!(
            parse_thread_counts("garbage"),
            DEFAULT_THREAD_COUNTS.to_vec()
        );
        assert_eq!(parse_thread_counts(""), DEFAULT_THREAD_COUNTS.to_vec());
        // Zero workers is meaningless for a matrix entry and is dropped.
        assert_eq!(parse_thread_counts("0,2"), vec![2]);
    }

    /// Learning: `learn_influence` is thread-count invariant on a
    /// synthesized log (the tentpole contract, via the shared harness).
    #[test]
    fn influence_learning_is_thread_invariant() {
        let g = test_graph(80, 500, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let log = synthesize_pair_log(
            &g,
            Gap::classic_ic(),
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 60,
                seeds_per_item: 3,
                fresh_cohorts: false,
            },
            &mut rng,
        );
        assert_thread_invariance("learn_influence", |threads| {
            graph_digest(&learn_influence(
                &g,
                &log,
                &InfluenceLearnConfig {
                    tau: 100_000,
                    default_p: 0.01,
                    threads,
                },
            ))
        });
    }

    /// Learning: `learn_gaps_with` is thread-count invariant.
    #[test]
    fn gap_learning_is_thread_invariant() {
        let g = test_graph(60, 400, 5);
        let mut rng = SmallRng::seed_from_u64(6);
        let truth = Gap::new(0.5, 0.75, 0.5, 0.75).unwrap();
        let log = synthesize_pair_log(
            &g,
            truth,
            ItemId(0),
            ItemId(1),
            &SynthConfig {
                sessions: 150,
                seeds_per_item: 3,
                fresh_cohorts: true,
            },
            &mut rng,
        );
        assert_thread_invariance("learn_gaps", |threads| {
            let l = learn_gaps_with(&log, ItemId(0), ItemId(1), &GapLearnConfig { threads })
                .expect("synthetic log has every denominator");
            [
                l.q_a0.value.to_bits(),
                l.q_ab.value.to_bits(),
                l.q_b0.value.to_bits(),
                l.q_ba.value.to_bits(),
                l.q_a0.samples as u64,
                l.q_ab.samples as u64,
                l.q_b0.samples as u64,
                l.q_ba.samples as u64,
            ]
        });
    }

    /// Generation: every parallel generator through the harness.
    #[test]
    fn generators_are_thread_invariant() {
        assert_thread_invariance("gnp_par", |t| {
            graph_digest(&gen::gnp_par(1_500, 0.004, &ParGen::with_threads(11, t)).unwrap())
        });
        assert_thread_invariance("gnm_par", |t| {
            graph_digest(&gen::gnm_par(700, 4_000, &ParGen::with_threads(12, t)).unwrap())
        });
        assert_thread_invariance("chung_lu_par", |t| {
            let cfg = gen::ChungLuConfig {
                n: 1_000,
                target_edges: 5_000,
                exponent: 2.16,
            };
            graph_digest(&gen::chung_lu_par(&cfg, &ParGen::with_threads(13, t)).unwrap())
        });
        assert_thread_invariance("watts_strogatz_par", |t| {
            graph_digest(
                &gen::watts_strogatz_par(600, 3, 0.25, &ParGen::with_threads(14, t)).unwrap(),
            )
        });
        assert_thread_invariance("barabasi_albert_par", |t| {
            graph_digest(&gen::barabasi_albert_par(400, 3, &ParGen::with_threads(15, t)).unwrap())
        });
    }

    /// RR generation: the weaker `(seed, threads)` reproducibility
    /// contract, through the harness's second mode.
    #[test]
    fn rr_generation_is_reproducible_per_configuration() {
        let g = test_graph(100, 600, 7);
        assert_reproducible("sharded_rr_generation", |threads| {
            let store =
                ShardedGenerator::new(|| IcRrSampler::new(&g), 21, threads).generate(400, 4);
            let mut acc: Vec<u64> = Vec::with_capacity(store.len() * 2);
            for i in 0..store.len() {
                acc.push(store.width(i));
                acc.extend(store.set(i).iter().map(|v| v.0 as u64));
            }
            acc
        });
    }

    /// Fused coverage-index builds: at every thread count in the matrix,
    /// `generate_indexed`'s merge-time index is byte-identical to a
    /// standalone `CoverageIndex::build` over that run's store — the
    /// tentpole's fused ≡ standalone contract, and the standalone build is
    /// itself thread-invariant over a fixed store.
    #[test]
    fn fused_index_build_matches_standalone_across_threads() {
        let g = test_graph(120, 700, 9);
        let n = g.num_nodes();
        let store = ShardedGenerator::new(|| IcRrSampler::new(&g), 17, 1).generate(3_000, 4);
        let report = assert_thread_invariance("coverage_index_standalone", |t| {
            CoverageIndex::build(&store, n, t)
        });
        assert!(report.digests.windows(2).all(|w| w[0].1 == w[1].1));
        for t in thread_counts() {
            let gen = ShardedGenerator::new(|| IcRrSampler::new(&g), 17, t);
            let (s, fused) = gen.generate_indexed(3_000, 4, n);
            assert_eq!(
                fused,
                CoverageIndex::build(&s, n, 1),
                "fused index diverged from standalone at threads={t}"
            );
            assert_eq!(s, gen.generate(3_000, 4), "fused store at threads={t}");
        }
    }

    /// Fragment merges: `CoverageIndex::from_fragments` over per-shard
    /// fragments equals the standalone build over the absorbed store, and
    /// the merge-time gather is thread-count invariant (via the harness).
    #[test]
    fn fragment_merge_gather_is_thread_invariant() {
        let g = test_graph(90, 500, 10);
        let n = g.num_nodes();
        let shards: Vec<_> = (0..3)
            .map(|i| {
                ShardedGenerator::new(|| IcRrSampler::new(&g), 30 + i, 1).generate(400 + 100 * i, 4)
            })
            .collect();
        let fragments: Vec<CoverageFragment> = shards
            .iter()
            .map(|s| CoverageFragment::over_store(s, n))
            .collect();
        let mut merged = comic_ris::RrStore::new();
        for s in shards {
            merged.absorb(s);
        }
        let standalone = CoverageIndex::build(&merged, n, 1);
        let report = assert_thread_invariance("from_fragments_gather", |t| {
            CoverageIndex::from_fragments(fragments.clone(), n, t)
        });
        assert!(report.digests.windows(2).all(|w| w[0].1 == w[1].1));
        assert_eq!(
            CoverageIndex::from_fragments(fragments.clone(), n, 1),
            standalone
        );
    }

    /// Seed selection: given a fixed RR-set store, index builds and CELF
    /// sweeps are fully thread-count invariant.
    #[test]
    fn seed_selection_is_thread_invariant() {
        let g = test_graph(120, 700, 8);
        let store = ShardedGenerator::new(|| IcRrSampler::new(&g), 9, 1).generate(3_000, 4);
        let n = g.num_nodes();
        assert_thread_invariance("coverage_index+celf", |threads| {
            let index = CoverageIndex::build(&store, n, threads);
            let sol = CelfGreedy { threads }.select(&index, &store, 10);
            let mut acc: Vec<u64> = sol.seeds.iter().map(|s| s.0 as u64).collect();
            acc.push(sol.covered);
            acc.extend(sol.marginals.iter().copied());
            acc
        });
    }
}
