//! Shared measurement helpers for bench drivers and the serving load
//! driver: percentiles, fixed-precision rounding for stable JSON
//! snapshots, and typed outcome tallies over protocol response lines.
//!
//! The serving layer's robustness work (admission control, deadlines,
//! graceful degradation) turned "did the query succeed" from a boolean
//! into a four-way outcome — [`OutcomeCounts`] is the one shared
//! vocabulary for it, so the load driver, chaos suite, and CI smoke all
//! classify response lines the same way.

/// The `p`-th percentile (`0.0..=1.0`) of an ascending-sorted sample set,
/// nearest-rank on the rounded index. Empty input yields `0.0`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Round to three decimals — the bench snapshots' fixed precision.
pub fn round3(x: f64) -> f64 {
    (x * 1_000.0).round() / 1_000.0
}

/// Outcome tallies over a batch of serving-protocol response lines.
///
/// Classification is on the wire form (this crate sits *below*
/// `comic-serve`, so it cannot see the typed `Response`): `ok:true` lines
/// count as `ok` (plus `degraded` when flagged), `overloaded` errors as
/// `shed`, `deadline_exceeded` as `deadline`, anything else failing as
/// `other_error`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Successful answers (`"ok":true`), degraded or not.
    pub ok: u64,
    /// Subset of `ok` carrying `"degraded":true` (stale refresh and/or
    /// deadline-driven ε-degradation).
    pub degraded: u64,
    /// Typed `overloaded` sheds (admission control or connection cap).
    pub shed: u64,
    /// Typed `deadline_exceeded` misses.
    pub deadline: u64,
    /// Every other failure (parse, bad query, pool, transport...).
    pub other_error: u64,
}

impl OutcomeCounts {
    /// All lines recorded so far.
    pub fn total(&self) -> u64 {
        self.ok + self.shed + self.deadline + self.other_error
    }

    /// Classify one response line.
    pub fn record_line(&mut self, line: &str) {
        if line.starts_with("{\"ok\":true") {
            self.ok += 1;
            if line.contains("\"degraded\":true") {
                self.degraded += 1;
            }
        } else if line.contains("\"error\":\"overloaded\"") {
            self.shed += 1;
        } else if line.contains("\"error\":\"deadline_exceeded\"") {
            self.deadline += 1;
        } else {
            self.other_error += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank_and_total_order() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert_eq!(percentile(&s, 0.5), 3.0); // rounds (3 * 0.5) = 1.5 up
    }

    #[test]
    fn round3_snaps_to_three_decimals() {
        assert_eq!(round3(1.23456), 1.235);
        assert_eq!(round3(-0.0004), -0.0);
        assert_eq!(round3(2.0), 2.0);
    }

    #[test]
    fn outcomes_classify_the_wire_forms() {
        let mut c = OutcomeCounts::default();
        c.record_line("{\"ok\":true,\"seeds\":[1],\"degraded\":false}");
        c.record_line(
            "{\"ok\":true,\"seeds\":[1],\"degraded\":true,\"degrade_reason\":\"deadline\"}",
        );
        c.record_line("{\"ok\":false,\"error\":\"overloaded\",\"message\":\"m\"}");
        c.record_line("{\"ok\":false,\"error\":\"deadline_exceeded\",\"message\":\"m\"}");
        c.record_line("{\"ok\":false,\"error\":\"bad_query\",\"message\":\"m\"}");
        assert_eq!(
            c,
            OutcomeCounts {
                ok: 2,
                degraded: 1,
                shed: 1,
                deadline: 1,
                other_error: 1,
            }
        );
        assert_eq!(c.total(), 5);
    }
}
