// Quickstart: build a network, define GAPs, and pick seeds for both
// SelfInfMax and CompInfMax.
//
// Run with: `cargo run --release --example quickstart`

use comic::model::seeds::seeds;
use comic::prelude::*;
use comic_graph::gen;
use comic_graph::prob::ProbModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(42);

    // 1. A power-law social network with weighted-cascade probabilities.
    let topo = gen::chung_lu(
        &gen::ChungLuConfig {
            n: 2_000,
            target_edges: 12_000,
            exponent: 2.16,
        },
        &mut rng,
    )
    .expect("valid generator config");
    let g = ProbModel::WeightedCascade.apply(&topo, &mut rng);
    println!("network: {}", comic_graph::stats::stats(&g));

    // 2. Two mutually complementary items (think: a phone A, a watch B).
    let gap = Gap::new(0.3, 0.8, 0.5, 0.5).unwrap();
    println!("GAPs: {gap}  (regime {:?})", gap.regime());

    // 3. SelfInfMax: B's marketer has committed to seeds 100..105; pick 10
    //    seeds for A that exploit the complementarity.
    let b_seeds = seeds(&[100, 101, 102, 103, 104]);
    let sol = SelfInfMax::new(&g, gap, b_seeds.clone())
        .epsilon(0.5)
        .eval_iterations(10_000)
        .solve(10, &mut rng)
        .expect("Q+ instance solves");
    println!(
        "\nSelfInfMax: strategy {:?}, θ = {}, KPT* = {:.1}",
        sol.strategy, sol.tim.theta, sol.tim.kpt
    );
    println!("  seeds: {:?}", sol.seeds);
    println!("  E[A-adoptions] = {:.1}", sol.objective);

    // 4. CompInfMax: with A's seeds now fixed to the solution above, pick 10
    //    B-seeds maximizing the *boost* they give A.
    let gap_cim = Gap::new(0.3, 0.8, 0.5, 1.0).unwrap();
    let boost_sol = CompInfMax::new(&g, gap_cim, sol.seeds.clone())
        .eval_iterations(10_000)
        .solve(10, &mut rng)
        .expect("Q+ instance solves");
    println!(
        "\nCompInfMax: strategy {:?}, boost = {:.1} extra A-adoptions",
        boost_sol.strategy, boost_sol.objective
    );
    println!("  B-seeds: {:?}", boost_sol.seeds);
}
