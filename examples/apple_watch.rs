// The paper's motivating campaign (§1): a phone (B) and a watch (A) with
// *asymmetric* complementarity — the watch is nearly useless without the
// phone, while the phone benefits mildly from the watch:
// `(q_{A|B} − q_{A|∅}) > (q_{B|A} − q_{B|∅}) ≥ 0`.
//
// The campaign question is CompInfMax's flip side composed with
// SelfInfMax: given the phone's existing seeding, where should the watch
// team seed, and how much does a complementary watch seeding boost the
// phone in return?
//
// Run with: `cargo run --release --example apple_watch`

use comic::algos::baselines::high_degree;
use comic::model::seeds::seeds;
use comic::prelude::*;
use comic_graph::gen;
use comic_graph::prob::ProbModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let topo = gen::barabasi_albert(3_000, 3, &mut rng).expect("valid config");
    let g = ProbModel::WeightedCascade.apply(&topo, &mut rng);
    println!("network: {}", comic_graph::stats::stats(&g));

    // Watch = A: barely adopted standalone (0.05), strongly boosted by the
    // phone (0.85). Phone = B: popular on its own (0.5), mildly boosted
    // by the watch (0.6).
    let gap = Gap::new(0.05, 0.85, 0.5, 0.6).unwrap();
    println!(
        "asymmetry: watch gains {:+.2} from phone, phone gains {:+.2} from watch",
        gap.boost_on_a(),
        gap.boost_on_b()
    );

    // The phone team has already seeded the 20 highest-degree users.
    let phone_seeds = high_degree(&g, 20);

    // Watch team: SelfInfMax for A given the phone's seeds. General Q+
    // (q_{B|∅} < q_{B|A}) routes through the sandwich approximation.
    let sol = SelfInfMax::new(&g, gap, phone_seeds.clone())
        .eval_iterations(10_000)
        .solve(20, &mut rng)
        .expect("Q+ solves");
    println!(
        "\nwatch seeding ({:?}): E[watch adoptions] = {:.0}",
        sol.strategy, sol.objective
    );
    if let Some(report) = &sol.sandwich {
        println!(
            "  sandwich factor σ(S_ν)/ν(S_ν) = {:.3}",
            report.upper_bound_ratio
        );
        for c in &report.candidates {
            println!("  candidate {:>5}: σ_A = {:.0}", c.name, c.objective);
        }
    }

    // Counterfactual: how much does the watch campaign help the *phone*?
    let est = SpreadEstimator::new(&g, gap);
    let with = est
        .estimate_parallel(
            &SeedPair::new(sol.seeds.clone(), phone_seeds.clone()),
            10_000,
            1,
            0,
        )
        .sigma_b;
    let without = est
        .estimate_parallel(
            &SeedPair::new(Vec::new(), phone_seeds.clone()),
            10_000,
            1,
            0,
        )
        .sigma_b;
    println!(
        "\nphone adoptions: {without:.0} alone -> {with:.0} with the watch campaign \
         ({:+.0} from complementarity)",
        with - without
    );

    // And the naive strategy comparison the paper warns about: copying the
    // phone's seeds vs. the optimized seeding.
    let copy = est
        .estimate_parallel(
            &SeedPair::new(phone_seeds.clone(), phone_seeds.clone()),
            10_000,
            1,
            0,
        )
        .sigma_a;
    println!(
        "\nwatch adoptions if the watch team just copied the phone seeds: {copy:.0} \
         (optimized: {:.0})",
        sol.objective
    );
    let _ = seeds(&[]);
}
