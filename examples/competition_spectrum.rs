// Sweep the GAP space "from competition to complementarity" — the
// spectrum the paper's title promises. Holding everything else fixed, we
// vary how item B's presence modulates A's adoption (q_{A|B} from 0 to 1)
// and watch σ_A respond, including the pure-competition and classic-IC
// special cases of §3.
//
// Run with: `cargo run --release --example competition_spectrum`

use comic::model::seeds::seeds;
use comic::prelude::*;
use comic_graph::gen;
use comic_graph::prob::ProbModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(99);
    let topo = gen::watts_strogatz(1_500, 4, 0.2, &mut rng).expect("valid config");
    let g = ProbModel::Constant(0.15).apply(&topo, &mut rng);
    println!("network: {}", comic_graph::stats::stats(&g));

    let sp = SeedPair::new(seeds(&[0, 10, 20, 30, 40]), seeds(&[5, 15, 25, 35, 45]));
    let q_a0 = 0.4;

    println!("\nvarying q_A|B with q_A|0 = {q_a0} (B's effect on A):");
    println!(
        "{:>8} {:>10} {:>10} {:>14}",
        "q_A|B", "sigma_A", "sigma_B", "relationship"
    );
    for q_ab in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let gap = Gap::new(q_a0, q_ab, 0.4, 0.4).unwrap();
        let est = SpreadEstimator::new(&g, gap).estimate_parallel(&sp, 20_000, 1, 0);
        let rel = if q_ab < q_a0 {
            "B competes with A"
        } else if q_ab > q_a0 {
            "B complements A"
        } else {
            "independent"
        };
        println!(
            "{q_ab:>8.2} {:>10.1} {:>10.1}   {rel}",
            est.sigma_a, est.sigma_b
        );
    }

    println!("\nspecial cases of §3:");
    for (name, gap, sp) in [
        (
            "classic IC (A only)",
            Gap::classic_ic(),
            SeedPair::a_only(seeds(&[0, 10, 20, 30, 40])),
        ),
        ("competitive IC", Gap::competitive_ic(), sp.clone()),
        (
            "perfect complements",
            Gap::new(0.4, 1.0, 0.4, 1.0).unwrap(),
            sp.clone(),
        ),
    ] {
        let est = SpreadEstimator::new(&g, gap).estimate_parallel(&sp, 20_000, 2, 0);
        println!(
            "  {name:<22} sigma_A = {:>7.1}  sigma_B = {:>7.1}",
            est.sigma_a, est.sigma_b
        );
    }

    // Monotonicity along the complementarity axis (Theorem 10): raising
    // q_{B|A} within Q+ should never lower sigma_A.
    println!("\nTheorem 10 in action — raising q_B|A (A's pull on B):");
    let mut last = 0.0;
    for q_ba in [0.4, 0.6, 0.8, 1.0] {
        let gap = Gap::new(0.3, 0.7, 0.4, q_ba).unwrap();
        let est = SpreadEstimator::new(&g, gap).estimate_parallel(&sp, 20_000, 3, 0);
        let marker = if est.sigma_a + 3.0 * est.stderr_a() < last {
            "  <-- UNEXPECTED DROP"
        } else {
            ""
        };
        println!("  q_B|A = {q_ba:.1}: sigma_A = {:.1}{marker}", est.sigma_a);
        last = est.sigma_a;
    }
}
