// §7.2 end to end: synthesize a rating/wishlist action log from known
// ground-truth GAPs, learn the GAPs back with 95% confidence intervals
// (the Tables 5–7 methodology), then drive seed selection with them.
//
// Run with: `cargo run --release --example gap_learning`

use comic::actionlog::synth::{synthesize_pair_log, SynthConfig};
use comic::actionlog::{learn_gaps, ItemId};
use comic::model::seeds::seeds;
use comic::prelude::*;
use comic_graph::gen;
use comic_graph::prob::ProbModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2026);
    let topo = gen::gnm(500, 3_000, &mut rng).expect("valid config");
    let g = ProbModel::Constant(0.4).apply(&topo, &mut rng);

    // Ground truth: the paper's learned Flixster pair "Monster Inc" (A) /
    // "Shrek" (B), Table 5 row 1.
    let truth = Gap::new(0.88, 0.92, 0.92, 0.96).unwrap();
    println!("ground truth: {truth}");

    let log = synthesize_pair_log(
        &g,
        truth,
        ItemId(0),
        ItemId(1),
        &SynthConfig {
            sessions: 500,
            seeds_per_item: 3,
            fresh_cohorts: true,
        },
        &mut rng,
    );
    println!(
        "synthesized log: {} records, {} users",
        log.len(),
        log.users().len()
    );

    let learned = learn_gaps(&log, ItemId(0), ItemId(1)).expect("enough data");
    println!("\nlearned GAPs (95% CI):");
    println!(
        "  q_A|0 = {}   [n = {}]",
        learned.q_a0, learned.q_a0.samples
    );
    println!(
        "  q_A|B = {}   [n = {}]",
        learned.q_ab, learned.q_ab.samples
    );
    println!(
        "  q_B|0 = {}   [n = {}]",
        learned.q_b0, learned.q_b0.samples
    );
    println!(
        "  q_B|A = {}   [n = {}]",
        learned.q_ba, learned.q_ba.samples
    );
    for (name, est, t) in [
        ("q_A|0", learned.q_a0, truth.q_a0),
        ("q_A|B", learned.q_ab, truth.q_ab),
        ("q_B|0", learned.q_b0, truth.q_b0),
        ("q_B|A", learned.q_ba, truth.q_ba),
    ] {
        println!(
            "  {name}: truth {t:.2} {} the CI",
            if est.covers(t) { "inside" } else { "OUTSIDE" }
        );
    }

    // Use the learned point estimates for seed selection (projecting onto
    // Q+ if sampling noise nudged them across the boundary).
    let mut gap = learned.gap().expect("estimates are probabilities");
    if gap.q_ab < gap.q_a0 {
        gap = Gap::new(gap.q_a0, gap.q_a0, gap.q_b0, gap.q_ba).unwrap();
    }
    if gap.q_ba < gap.q_b0 {
        gap = Gap::new(gap.q_a0, gap.q_ab, gap.q_b0, gap.q_b0).unwrap();
    }
    let sol = SelfInfMax::new(&g, gap, seeds(&[0, 1, 2]))
        .eval_iterations(10_000)
        .solve(10, &mut rng)
        .expect("Q+ solves");
    println!(
        "\nSelfInfMax with learned GAPs: {:?}, E[A-adoptions] = {:.0}",
        sol.strategy, sol.objective
    );
}
