//! # comic — Comparative Influence Diffusion and Maximization
//!
//! Facade crate for the reproduction of *"From Competition to
//! Complementarity: Comparative Influence Diffusion and Maximization"*
//! (Lu, Chen, Lakshmanan — PVLDB 9(2) / VLDB 2016).
//!
//! Re-exports the workspace crates under one roof so that examples and
//! downstream users can depend on a single crate:
//!
//! * [`graph`] — directed probabilistic graphs, generators, statistics.
//! * [`model`] — the Com-IC diffusion model, simulation, possible worlds.
//! * [`ris`] — the generalized reverse-reachable-set (GeneralTIM) framework.
//! * [`algos`] — SelfInfMax / CompInfMax solvers, sandwich approximation,
//!   greedy and heuristic baselines.
//! * [`actionlog`] — action logs, GAP learning, edge-probability learning.
//!
//! ## Quickstart
//! ```
//! use comic::prelude::*;
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! // A small social network with weighted-cascade probabilities.
//! let mut rng = SmallRng::seed_from_u64(7);
//! let topo = comic::graph::gen::gnm(200, 1000, &mut rng).unwrap();
//! let g = comic::graph::prob::ProbModel::WeightedCascade.apply(&topo, &mut rng);
//!
//! // Mutually complementary items (e.g. a phone and a watch).
//! let gap = Gap::new(0.4, 0.8, 0.4, 0.8).unwrap();
//!
//! // Fix B's seeds, pick 5 seeds for A maximizing A's expected adoption.
//! let b_seeds: Vec<NodeId> = vec![NodeId(0), NodeId(1)];
//! let sol = SelfInfMax::new(&g, gap, b_seeds.clone())
//!     .epsilon(0.5)
//!     .solve(5, &mut rng)
//!     .unwrap();
//! assert_eq!(sol.seeds.len(), 5);
//! ```

pub use comic_actionlog as actionlog;
pub use comic_algos as algos;
pub use comic_core as model;
pub use comic_graph as graph;
pub use comic_ris as ris;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use comic_algos::comp_inf_max::CompInfMax;
    pub use comic_algos::self_inf_max::SelfInfMax;
    pub use comic_core::gap::{Gap, Regime};
    pub use comic_core::item::Item;
    pub use comic_core::seeds::SeedPair;
    pub use comic_core::spread::SpreadEstimator;
    pub use comic_graph::{DiGraph, GraphBuilder, NodeId};
}
